(* Fig. 14: impact analysis of scheduling primitives — cumulative
   combinations per representative benchmark (LI = interchange, LT = tile,
   LSK = skew, LP = pipeline, LU = unroll, AP = array partition). *)

open Pom.Dsl

let compile_with build directives =
  let func = build () in
  List.iter (Func.schedule func) directives;
  Util.compile `Pom_manual func

let edge_detect_configs =
  let build () = Pom.Workloads.Image.edge_detect 4096 in
  let stmts = [ "s_gx"; "s_gy"; "s_mag" ] in
  let lp = List.map (fun s -> Schedule.pipeline s "x" 1) stmts in
  let lu =
    List.concat_map
      (fun s ->
        [
          Schedule.split s "x" 8 "x_o" "x_i";
          Schedule.pipeline s "x_o" 1;
          Schedule.unroll s "x_i" 8;
        ])
      stmts
  in
  let ap =
    List.map
      (fun a -> Schedule.partition a [ 1; 1; 8 ] Schedule.Cyclic)
      [ "I"; "Gx"; "Gy"; "Out" ]
  in
  ("EdgeDetect", build, [ ("LP", lp); ("LP+LU", lu); ("LP+LU+AP", lu @ ap) ])

let mm2_configs =
  let build () = Pom.Workloads.Polybench.mm2 4096 in
  let stmts = [ "mm_tmp"; "mm_d" ] in
  let lp = List.map (fun s -> Schedule.pipeline s "k" 1) stmts in
  let li s = [ Schedule.interchange s "k" "j"; Schedule.interchange s "k" "i" ] in
  let li_lp =
    List.concat_map (fun s -> li s @ [ Schedule.pipeline s "j" 1 ]) stmts
  in
  let li_lt_lu =
    List.concat_map
      (fun s ->
        li s
        @ [
            Schedule.tile s "i" "j" 2 16 "i0" "j0" "i1" "j1";
            Schedule.pipeline s "j0" 1;
            Schedule.unroll s "i1" 2;
            Schedule.unroll s "j1" 16;
          ])
      stmts
  in
  let ap =
    [
      Schedule.partition "A" [ 2; 1 ] Schedule.Cyclic;
      Schedule.partition "B" [ 1; 16 ] Schedule.Cyclic;
      Schedule.partition "C" [ 1; 16 ] Schedule.Cyclic;
      Schedule.partition "tmp" [ 2; 16 ] Schedule.Cyclic;
      Schedule.partition "Dm" [ 2; 16 ] Schedule.Cyclic;
    ]
  in
  ( "2MM",
    build,
    [
      ("LP", lp);
      ("LI+LP", li_lp);
      ("LI+LT+LP+LU", li_lt_lu);
      ("LI+LT+LP+LU+AP", li_lt_lu @ ap);
    ] )

let seidel_configs =
  let build () = Pom.Workloads.Polybench.seidel 1024 in
  let lp = [ Schedule.pipeline "s" "j" 1 ] in
  let lu =
    [
      Schedule.split "s" "j" 8 "j_o" "j_i";
      Schedule.pipeline "s" "j_o" 1;
      Schedule.unroll "s" "j_i" 8;
      Schedule.partition "A" [ 1; 8 ] Schedule.Cyclic;
    ]
  in
  let lsk =
    [
      Schedule.skew "s" "i" "j" 2 1 "is" "js";
      Schedule.interchange "s" "is" "js";
      Schedule.pipeline "s" "is" 1;
    ]
  in
  let lsk_full =
    [
      Schedule.skew "s" "i" "j" 2 1 "is" "js";
      Schedule.interchange "s" "is" "js";
      Schedule.split "s" "is" 8 "is_o" "is_i";
      Schedule.pipeline "s" "is_o" 1;
      Schedule.unroll "s" "is_i" 8;
      Schedule.partition "A" [ 8; 8 ] Schedule.Cyclic;
    ]
  in
  ( "Seidel",
    build,
    [
      ("LP", lp);
      ("LP+LU+AP", lu);
      ("LSK+LP", lsk);
      ("LSK+LP+LU+AP", lsk_full);
    ] )

let run () =
  Util.section "Fig. 14 | Impact analysis of scheduling primitives";
  List.iter
    (fun (name, build, configs) ->
      let rows =
        List.map
          (fun (label, directives) ->
            let c = compile_with build directives in
            [ name; label; Util.speedup_s c; Util.dsp_s c; Util.ii_s c ])
          configs
      in
      Util.print_table
        [ "Benchmark"; "Primitives"; "Speedup"; "DSP (util)"; "II" ]
        rows;
      print_newline ())
    [ edge_detect_configs; mm2_configs; seidel_configs ];
  print_endline
    "(paper shape: EdgeDetect already gains from LP; Seidel needs LSK;";
  print_endline " 2MM needs the full transformation + optimization stack)"
