(* Fig. 16: the Jacobi-1d DSL case study — the algorithm description, the
   expert's explicit primitives, and the novice's autoDSE call producing an
   equivalent design. *)

open Pom.Dsl

let manual_schedule func =
  List.iter (Func.schedule func)
    [
      Schedule.split "s0" "i" 16 "i_o" "i_i";
      Schedule.pipeline "s0" "i_o" 1;
      Schedule.unroll "s0" "i_i" 16;
      Schedule.split "s1" "i" 16 "i_o" "i_i";
      Schedule.pipeline "s1" "i_o" 1;
      Schedule.unroll "s1" "i_i" 16;
      Schedule.partition "A" [ 16 ] Schedule.Cyclic;
      Schedule.partition "B" [ 16 ] Schedule.Cyclic;
    ]

let run () =
  Util.section "Fig. 16 | Jacobi-1d described with the POM DSL";
  let func = Pom.Workloads.Polybench.jacobi1d 4096 in
  Format.printf "algorithm specification:@.%a@.@." Func.pp func;
  let manual_func = Pom.Workloads.Polybench.jacobi1d 4096 in
  manual_schedule manual_func;
  let manual = Util.compile `Pom_manual manual_func in
  let auto = Util.compile `Pom_auto func in
  Util.print_table
    [ "Path"; "Speedup"; "II"; "DSP (util)"; "LUT (util)" ]
    [
      [
        "expert primitives (3)"; Util.speedup_s manual; Util.ii_s manual;
        Util.dsp_s manual; Util.lut_s manual;
      ];
      [
        "f.auto_DSE() (4)"; Util.speedup_s auto; Util.ii_s auto;
        Util.dsp_s auto; Util.lut_s auto;
      ];
    ];
  print_endline
    "(the autoDSE primitive reaches a design equivalent to the expert's)"
