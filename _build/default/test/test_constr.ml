open Pom_poly

let v = Linexpr.var

let c = Linexpr.const

let constr_str x = Constr.to_string x

let test_smart_constructors () =
  Alcotest.(check string) "ge" "i - 3 >= 0" (constr_str (Constr.ge (v "i") (c 3)));
  Alcotest.(check string) "le" "-i + 3 >= 0" (constr_str (Constr.le (v "i") (c 3)));
  Alcotest.(check string) "lt is integer strict" "-i + 2 >= 0"
    (constr_str (Constr.lt (v "i") (c 3)));
  Alcotest.(check string) "gt" "i - 4 >= 0" (constr_str (Constr.gt (v "i") (c 3)));
  Alcotest.(check string) "eq" "i - j = 0" (constr_str (Constr.eq (v "i") (v "j")))

let test_sat () =
  let env = function "i" -> 4 | "j" -> 4 | _ -> raise Not_found in
  Alcotest.(check bool) "ge sat" true (Constr.sat env (Constr.ge (v "i") (c 4)));
  Alcotest.(check bool) "lt unsat at boundary" false
    (Constr.sat env (Constr.lt (v "i") (c 4)));
  Alcotest.(check bool) "eq sat" true (Constr.sat env (Constr.eq (v "i") (v "j")))

let test_normalize_inequality_tightens () =
  (* 2i - 3 >= 0 normalizes to i - 2 >= 0 (i >= ceil(3/2)) *)
  let c' = Constr.Ge (Linexpr.add (Linexpr.term 2 "i") (c (-3))) in
  match Constr.normalize c' with
  | Some n -> Alcotest.(check string) "tightened" "i - 2 >= 0" (constr_str n)
  | None -> Alcotest.fail "unexpected unsat"

let test_normalize_equality_gcd () =
  (* 2i - 3 = 0 has no integer solution *)
  let c' = Constr.Eq (Linexpr.add (Linexpr.term 2 "i") (c (-3))) in
  Alcotest.(check bool) "gcd-unsat equality" true (Constr.normalize c' = None);
  (* 2i - 4 = 0 becomes i - 2 = 0 *)
  let c2 = Constr.Eq (Linexpr.add (Linexpr.term 2 "i") (c (-4))) in
  match Constr.normalize c2 with
  | Some n -> Alcotest.(check string) "divided" "i - 2 = 0" (constr_str n)
  | None -> Alcotest.fail "unexpected unsat"

let test_tautology_contradiction () =
  Alcotest.(check bool) "0 >= 0 tautology" true (Constr.is_tautology (Constr.Ge (c 0)));
  Alcotest.(check bool) "5 >= 0 tautology" true (Constr.is_tautology (Constr.Ge (c 5)));
  Alcotest.(check bool) "-1 >= 0 contradiction" true
    (Constr.is_contradiction (Constr.Ge (c (-1))));
  Alcotest.(check bool) "1 = 0 contradiction" true
    (Constr.is_contradiction (Constr.Eq (c 1)));
  Alcotest.(check bool) "i >= 0 neither" false
    (Constr.is_tautology (Constr.Ge (v "i")) || Constr.is_contradiction (Constr.Ge (v "i")))

let test_subst () =
  let c' = Constr.ge (v "i") (c 0) in
  let subbed = Constr.subst "i" (Linexpr.sub (v "j") (c 2)) c' in
  Alcotest.(check string) "subst" "j - 2 >= 0" (constr_str subbed)

let prop_normalize_preserves_integer_solutions =
  QCheck.Test.make ~name:"normalize preserves integer solution set" ~count:300
    QCheck.(triple (int_range (-6) 6) (int_range (-20) 20) (int_range (-10) 10))
    (fun (coeff, cst, x) ->
      QCheck.assume (coeff <> 0);
      let c' = Constr.Ge (Linexpr.add (Linexpr.term coeff "i") (Linexpr.const cst)) in
      let env = function "i" -> x | _ -> raise Not_found in
      match Constr.normalize c' with
      | Some n -> Constr.sat env c' = Constr.sat env n
      | None -> not (Constr.sat env c'))

let () =
  Alcotest.run "constr"
    [
      ( "unit",
        [
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "satisfaction" `Quick test_sat;
          Alcotest.test_case "inequality normalization tightens" `Quick
            test_normalize_inequality_tightens;
          Alcotest.test_case "equality GCD test" `Quick test_normalize_equality_gcd;
          Alcotest.test_case "tautology and contradiction" `Quick
            test_tautology_contradiction;
          Alcotest.test_case "substitution" `Quick test_subst;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_normalize_preserves_integer_solutions ] );
    ]
