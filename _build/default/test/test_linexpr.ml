open Pom_poly

let v = Linexpr.var

let c = Linexpr.const

let check_expr msg expected actual =
  Alcotest.(check string) msg expected (Linexpr.to_string actual)

let test_constructors () =
  check_expr "zero" "0" Linexpr.zero;
  check_expr "const" "7" (c 7);
  check_expr "neg const" "-3" (c (-3));
  check_expr "var" "i" (v "i");
  check_expr "term" "4i" (Linexpr.term 4 "i");
  check_expr "zero term vanishes" "0" (Linexpr.term 0 "i")

let test_arith () =
  check_expr "add" "i + j" (Linexpr.add (v "i") (v "j"));
  check_expr "add const" "i + 3" (Linexpr.add (v "i") (c 3));
  check_expr "sub cancels" "0" (Linexpr.sub (v "i") (v "i"));
  check_expr "scale" "6i + 2" (Linexpr.scale 2 (Linexpr.add (Linexpr.term 3 "i") (c 1)));
  check_expr "scale by zero" "0" (Linexpr.scale 0 (Linexpr.add (v "i") (c 5)));
  check_expr "neg" "-i - 1" (Linexpr.neg (Linexpr.add (v "i") (c 1)))

let test_coeff_access () =
  let e = Linexpr.add (Linexpr.term 3 "i") (Linexpr.add (Linexpr.term (-2) "j") (c 5)) in
  Alcotest.(check int) "coeff i" 3 (Linexpr.coeff e "i");
  Alcotest.(check int) "coeff j" (-2) (Linexpr.coeff e "j");
  Alcotest.(check int) "coeff absent" 0 (Linexpr.coeff e "k");
  Alcotest.(check int) "const" 5 (Linexpr.const_of e);
  Alcotest.(check (list string)) "dims" [ "i"; "j" ] (Linexpr.dims e);
  Alcotest.(check bool) "not const" false (Linexpr.is_const e);
  Alcotest.(check bool) "const is const" true (Linexpr.is_const (c 9))

let test_subst () =
  (* i := 2k + 1 in 3i + j *)
  let e = Linexpr.add (Linexpr.term 3 "i") (v "j") in
  let repl = Linexpr.add (Linexpr.term 2 "k") (c 1) in
  check_expr "subst" "j + 6k + 3" (Linexpr.subst "i" repl e);
  check_expr "subst absent dim" "3i + j" (Linexpr.subst "z" repl e)

let test_subst_all_simultaneous () =
  (* swap i and j simultaneously: must not cascade *)
  let e = Linexpr.add (v "i") (Linexpr.term 2 "j") in
  let swapped = Linexpr.subst_all [ ("i", v "j"); ("j", v "i") ] e in
  check_expr "swap" "2i + j" swapped

let test_rename () =
  let e = Linexpr.add (Linexpr.term 2 "i") (v "j") in
  check_expr "rename" "j + 2x" (Linexpr.rename_dim "i" "x" e)

let test_eval () =
  let e = Linexpr.add (Linexpr.term 3 "i") (Linexpr.add (Linexpr.term (-1) "j") (c 10)) in
  let env = function "i" -> 2 | "j" -> 5 | _ -> raise Not_found in
  Alcotest.(check int) "eval" 11 (Linexpr.eval env e)

let test_content_div () =
  let e = Linexpr.add (Linexpr.term 6 "i") (Linexpr.add (Linexpr.term 9 "j") (c 12)) in
  Alcotest.(check int) "content" 3 (Linexpr.content e);
  check_expr "div exact" "2i + 3j + 4" (Linexpr.div_exact 3 e);
  Alcotest.check_raises "div not exact" (Invalid_argument "Linexpr.div_exact: not divisible")
    (fun () -> ignore (Linexpr.div_exact 4 e))

let test_compare () =
  Alcotest.(check bool) "equal" true (Linexpr.equal (Linexpr.add (v "i") (c 1)) (Linexpr.add (c 1) (v "i")));
  Alcotest.(check bool) "not equal" false (Linexpr.equal (v "i") (v "j"))

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:200
    QCheck.(pair (pair small_int small_int) (pair small_int small_int))
    (fun ((a, b), (c', d)) ->
      let open Linexpr in
      let e1 = add (term a "i") (const b) and e2 = add (term c' "j") (const d) in
      equal (add e1 e2) (add e2 e1))

let prop_eval_linear =
  QCheck.Test.make ~name:"eval is linear in scaling" ~count:200
    QCheck.(triple (int_range (-20) 20) (int_range (-50) 50) (int_range (-50) 50))
    (fun (k, ci, cst) ->
      let e = Linexpr.add (Linexpr.term ci "i") (Linexpr.const cst) in
      let env = function "i" -> 7 | _ -> raise Not_found in
      Linexpr.eval env (Linexpr.scale k e) = k * Linexpr.eval env e)

let () =
  Alcotest.run "linexpr"
    [
      ( "unit",
        [
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "coefficient access" `Quick test_coeff_access;
          Alcotest.test_case "substitution" `Quick test_subst;
          Alcotest.test_case "simultaneous substitution" `Quick test_subst_all_simultaneous;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "content and exact division" `Quick test_content_div;
          Alcotest.test_case "comparison" `Quick test_compare;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_add_commutes; prop_eval_linear ] );
    ]
