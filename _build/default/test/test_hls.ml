open Pom_dsl
open Pom_polyir
open Pom_hls
open Expr

let f32 = Dtype.p_float32

let gemm_func n =
  let f = Func.create "gemm" in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  let d = Placeholder.make "D" [ n; n ] f32 in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  ignore
    (Func.compute f "s" ~iters:[ k; i; j ]
       ~body:
         (access d [ ix i; ix j ]
         +: (access a [ ix i; ix k ] *: access b [ ix k; ix j ]))
       ~dest:(d, [ ix i; ix j ]) ());
  f

let synth ?composition func =
  Report.synthesize ?composition ~device:Device.xc7z020 (Prog.of_func func)

let test_device () =
  let d = Device.xc7z020 in
  Alcotest.(check int) "dsp" 220 d.Device.dsp;
  Alcotest.(check int) "lut" 53_200 d.Device.lut;
  let half = Device.scale 0.5 d in
  Alcotest.(check int) "scaled dsp" 110 half.Device.dsp;
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Device.scale: bad fraction") (fun () ->
      ignore (Device.scale 0.0 d))

let test_bigger_device_scales_parallelism () =
  let par device =
    let o = Pom_dse.Engine.run ~device (Pom_workloads.Polybench.bicg 1024) in
    o.Pom_dse.Engine.result.Pom_dse.Stage2.report.Report.parallelism
  in
  Alcotest.(check bool) "zu9eg buys more parallelism" true
    (par Device.xczu9eg > par Device.xc7z020)

let test_opchar_body () =
  let f = gemm_func 4 in
  let c = Func.find_compute f "s" in
  let body = Opchar.analyze_body c in
  Alcotest.(check int) "one add" 1 body.Opchar.n_fadd;
  Alcotest.(check int) "one mul" 1 body.Opchar.n_fmul;
  (* path: load(2) -> mul(3) -> add(4) -> store(1) = 10 *)
  Alcotest.(check int) "critical path" 10 body.Opchar.crit_path;
  Alcotest.(check (list (pair string int))) "accesses"
    [ ("A", 1); ("B", 1); ("D", 2) ]
    body.Opchar.accesses

let test_body_resources () =
  let f = gemm_func 4 in
  let body = Opchar.analyze_body (Func.find_compute f "s") in
  let r1 = Opchar.body_resources body ~copies:1 in
  let r4 = Opchar.body_resources body ~copies:4 in
  Alcotest.(check int) "mac = 5 dsp" 5 r1.Opchar.dsp;
  Alcotest.(check int) "copies scale" 20 r4.Opchar.dsp

let test_summary () =
  let f = gemm_func 8 in
  Func.schedule f (Schedule.pipeline "s" "i" 1);
  Func.schedule f (Schedule.unroll "s" "j" 4);
  let prog = Prog.of_func f in
  match Summary.profile_all prog with
  | [ p ] ->
      Alcotest.(check int) "total points" 512 p.Summary.total_points;
      Alcotest.(check bool) "rectangular" true p.Summary.rectangular;
      Alcotest.(check (option int)) "pipeline level" (Some 2)
        (Summary.pipeline_level p);
      let j_loop = List.nth p.Summary.loops 2 in
      Alcotest.(check int) "unroll" 4 j_loop.Summary.unroll;
      (* the (k,i,j) order carries the D dependence at level 1 only *)
      Alcotest.(check bool) "dep carried at level 1" true
        (List.exists (fun dep -> List.mem_assoc 1 dep) p.Summary.deps)
  | _ -> Alcotest.fail "expected one profile"

let test_sequential_baseline () =
  let f = gemm_func 8 in
  let lat = Report.baseline_latency f in
  (* 512 points x (crit 10 + 2*3 levels) = 8192 *)
  Alcotest.(check int) "baseline formula" 8192 lat

let test_pipelined_ii_one () =
  let f = gemm_func 8 in
  (* innermost-free order (k outermost carries the dep): pipeline j *)
  Func.schedule f (Schedule.pipeline "s" "j" 1);
  let r = synth f in
  Alcotest.(check (list (pair int int))) "II = 1" [ (0, 1) ] r.Report.iis;
  Alcotest.(check bool) "latency near trip count" true
    (r.Report.latency < 600 && r.Report.latency >= 512)

let test_recmii_on_tight_loop () =
  let f = gemm_func 8 in
  (* reorder (k,i,j) to (i,j,k): dependence carried at innermost k *)
  Func.schedule f (Schedule.interchange "s" "k" "j");
  Func.schedule f (Schedule.interchange "s" "j" "i");
  Func.schedule f (Schedule.pipeline "s" "k" 1);
  let r = synth f in
  (* II = load + fadd + store = 7, despite the II=1 target *)
  Alcotest.(check (list (pair int int))) "RecMII" [ (0, 7) ] r.Report.iis

let test_resmii_ports () =
  let f = gemm_func 8 in
  Func.schedule f (Schedule.pipeline "s" "i" 1);
  Func.schedule f (Schedule.unroll "s" "j" 8);
  (* 8 unrolled copies: D and B touched at 8 addresses each, 2 ports,
     no partitioning -> II >= ceil(8+8 / 2) = 8 on D *)
  let r = synth f in
  let ii = List.assoc 0 r.Report.iis in
  Alcotest.(check bool) "port-limited" true (ii >= 4);
  (* partitioning the varying dimension restores II 1 *)
  Func.schedule f (Schedule.partition "D" [ 1; 8 ] Schedule.Cyclic);
  Func.schedule f (Schedule.partition "B" [ 1; 8 ] Schedule.Cyclic);
  let r2 = synth f in
  Alcotest.(check int) "partitioned" 1 (List.assoc 0 r2.Report.iis)

let test_partition_wrong_dim_useless () =
  let f = gemm_func 8 in
  Func.schedule f (Schedule.pipeline "s" "i" 1);
  Func.schedule f (Schedule.unroll "s" "j" 8);
  (* partitioning dim 1 of D does not help a j-unrolled access D[i][j] *)
  Func.schedule f (Schedule.partition "D" [ 8; 1 ] Schedule.Cyclic);
  Func.schedule f (Schedule.partition "B" [ 1; 8 ] Schedule.Cyclic);
  let r = synth f in
  Alcotest.(check bool) "still port-limited" true
    (List.assoc 0 r.Report.iis >= 4)

let test_monotonicity () =
  let make unroll =
    let f = gemm_func 8 in
    Func.schedule f (Schedule.split "s" "j" unroll "j0" "j1");
    Func.schedule f (Schedule.pipeline "s" "j0" 1);
    Func.schedule f (Schedule.unroll "s" "j1" unroll);
    Func.schedule f (Schedule.partition "D" [ 1; unroll ] Schedule.Cyclic);
    Func.schedule f (Schedule.partition "B" [ 1; unroll ] Schedule.Cyclic);
    synth f
  in
  let r2 = make 2 and r4 = make 4 in
  Alcotest.(check bool) "more unroll, less latency" true
    (r4.Report.latency < r2.Report.latency);
  Alcotest.(check bool) "more unroll, more dsp" true
    (r4.Report.usage.Resource.dsp > r2.Report.usage.Resource.dsp)

let test_composition_modes () =
  let f = Pom_workloads.Polybench.mm2 64 in
  let prog = Prog.of_func f in
  let reuse = Report.synthesize ~device:Device.xc7z020 prog in
  let dflow =
    Report.synthesize ~composition:Resource.Dataflow ~device:Device.xc7z020 prog
  in
  Alcotest.(check bool) "dataflow uses at least as much" true
    (dflow.Report.usage.Resource.dsp >= reuse.Report.usage.Resource.dsp)

let test_dtype_costs () =
  (* a float MAC takes 5 DSPs, an int8 MAC none, a double MAC many *)
  Alcotest.(check int) "f32 mac dsp" 5
    ((Opchar.add_cost Dtype.p_float32).Opchar.dsp
    + (Opchar.mul_cost Dtype.p_float32).Opchar.dsp);
  Alcotest.(check int) "i8 mac dsp" 0
    ((Opchar.add_cost Dtype.p_int8).Opchar.dsp
    + (Opchar.mul_cost Dtype.p_int8).Opchar.dsp);
  Alcotest.(check bool) "f64 mac heavier" true
    ((Opchar.mul_cost Dtype.p_float64).Opchar.dsp
    > (Opchar.mul_cost Dtype.p_float32).Opchar.dsp);
  (* integer accumulation chains are short: II stays low on a tight loop *)
  let fint = Pom_workloads.Polybench.gemm_typed Dtype.p_int32 8 in
  Func.schedule fint (Schedule.pipeline "s" "k" 1);
  let r = synth fint in
  Alcotest.(check bool) "int RecMII below float's 7" true
    (List.assoc 0 r.Report.iis < 7)

let test_bram_model () =
  (* small arrays are buffered on-chip; the evaluation's 4096^2 matrices
     are external *)
  let small = synth (gemm_func 32) in
  Alcotest.(check bool) "small gemm uses BRAM" true
    (small.Report.usage.Resource.bram > 0);
  let big = synth (gemm_func 2048) in
  Alcotest.(check int) "big arrays external" 0 big.Report.usage.Resource.bram;
  Alcotest.(check int) "xc7z020 blocks" 265
    (Resource.bram18_blocks Device.xc7z020)

let test_power_positive_and_monotone () =
  let u1 = { Resource.dsp = 10; lut = 1000; ff = 1000; bram = 2 } in
  let u2 = { Resource.dsp = 100; lut = 30000; ff = 30000; bram = 40 } in
  Alcotest.(check bool) "positive" true (Resource.power u1 > 0.0);
  Alcotest.(check bool) "monotone" true (Resource.power u2 > Resource.power u1)

let test_feasibility () =
  let d = Device.xc7z020 in
  Alcotest.(check bool) "fits" true
    (Resource.fits d { Resource.dsp = 220; lut = 53_200; ff = 106_400; bram = 0 });
  Alcotest.(check bool) "does not fit" false
    (Resource.fits d { Resource.dsp = 221; lut = 0; ff = 0; bram = 0 })

let prop_unroll_latency_monotone =
  QCheck.Test.make ~name:"doubling unroll never increases latency" ~count:20
    (QCheck.make QCheck.Gen.(int_range 1 3))
    (fun log_u ->
      let u = 1 lsl log_u in
      let make unroll =
        let f = gemm_func 16 in
        Func.schedule f (Schedule.split "s" "j" unroll "j0" "j1");
        Func.schedule f (Schedule.pipeline "s" "j0" 1);
        Func.schedule f (Schedule.unroll "s" "j1" unroll);
        Func.schedule f (Schedule.partition "D" [ 1; unroll ] Schedule.Cyclic);
        Func.schedule f (Schedule.partition "B" [ 1; unroll ] Schedule.Cyclic);
        (synth f).Report.latency
      in
      make (2 * u) <= make u)

let () =
  Alcotest.run "hls"
    [
      ( "unit",
        [
          Alcotest.test_case "device" `Quick test_device;
          Alcotest.test_case "device scaling" `Quick
            test_bigger_device_scales_parallelism;
          Alcotest.test_case "operator characterization" `Quick test_opchar_body;
          Alcotest.test_case "body resources" `Quick test_body_resources;
          Alcotest.test_case "summary extraction" `Quick test_summary;
          Alcotest.test_case "sequential baseline" `Quick test_sequential_baseline;
          Alcotest.test_case "pipelined II=1" `Quick test_pipelined_ii_one;
          Alcotest.test_case "RecMII on tight loop" `Quick test_recmii_on_tight_loop;
          Alcotest.test_case "ResMII port pressure" `Quick test_resmii_ports;
          Alcotest.test_case "partitioning the wrong dim" `Quick
            test_partition_wrong_dim_useless;
          Alcotest.test_case "monotonicity" `Quick test_monotonicity;
          Alcotest.test_case "composition modes" `Quick test_composition_modes;
          Alcotest.test_case "data-type costs" `Quick test_dtype_costs;
          Alcotest.test_case "BRAM model" `Quick test_bram_model;
          Alcotest.test_case "power model" `Quick test_power_positive_and_monotone;
          Alcotest.test_case "feasibility" `Quick test_feasibility;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_unroll_latency_monotone ]);
    ]
