open Pom_dsl
open Expr

let f32 = Dtype.p_float32

let test_dtype () =
  Alcotest.(check int) "f32 bits" 32 (Dtype.bits Dtype.p_float32);
  Alcotest.(check int) "i64 bits" 64 (Dtype.bits Dtype.p_int64);
  Alcotest.(check bool) "float" true (Dtype.is_float Dtype.p_float64);
  Alcotest.(check bool) "uint unsigned" false (Dtype.is_signed Dtype.p_uint16);
  Alcotest.(check string) "c name" "uint8_t" (Dtype.c_name Dtype.p_uint8)

let test_var () =
  let i = Var.make "i" 0 32 in
  Alcotest.(check int) "extent" 32 (Var.extent i);
  Alcotest.(check int) "two constraints" 2 (List.length (Var.constraints i));
  Alcotest.check_raises "empty range"
    (Invalid_argument "Var.make i: empty range [5, 5)") (fun () ->
      ignore (Var.make "i" 5 5));
  Alcotest.check_raises "reserved char"
    (Invalid_argument "Var.make: reserved character in name s$x") (fun () ->
      ignore (Var.make "s$x" 0 4))

let test_placeholder () =
  let p = Placeholder.make "A" [ 4; 8 ] f32 in
  Alcotest.(check int) "rank" 2 (Placeholder.rank p);
  Alcotest.(check int) "size" 32 (Placeholder.size p);
  Alcotest.(check int) "bits" 1024 (Placeholder.bits p);
  Alcotest.check_raises "empty shape"
    (Invalid_argument "Placeholder.make: empty shape") (fun () ->
      ignore (Placeholder.make "A" [] f32))

let test_index_to_linexpr () =
  let open Pom_poly in
  let e = index_to_linexpr ((2 *! ix_name "i") +! ixc 3 -! ix_name "j") in
  Alcotest.(check int) "coeff i" 2 (Linexpr.coeff e "i");
  Alcotest.(check int) "coeff j" (-1) (Linexpr.coeff e "j");
  Alcotest.(check int) "const" 3 (Linexpr.const_of e)

let test_expr_ops () =
  let a = Placeholder.make "A" [ 8 ] f32 in
  let b = Placeholder.make "B" [ 8 ] f32 in
  let e = (access a [ ixc 0 ] +: access b [ ixc 1 ]) *: fconst 2.0 in
  let adds, _, muls, _, _ = op_counts e in
  Alcotest.(check (pair int int)) "op counts" (1, 1) (adds, muls);
  Alcotest.(check int) "loads" 2 (List.length (loads e));
  Alcotest.check_raises "rank check"
    (Invalid_argument "Expr.access: A has rank 1, got 2 indices") (fun () ->
      ignore (access a [ ixc 0; ixc 1 ]))

let test_expr_subst () =
  let a = Placeholder.make "A" [ 8 ] f32 in
  let e = access a [ ix_name "i" ] in
  let e' = subst_indices [ ("i", ix_name "x" +! ixc 1) ] e in
  match loads e' with
  | [ (_, [ idx ]) ] ->
      let open Pom_poly in
      let le = index_to_linexpr idx in
      Alcotest.(check int) "substituted coeff" 1 (Linexpr.coeff le "x");
      Alcotest.(check int) "substituted const" 1 (Linexpr.const_of le)
  | _ -> Alcotest.fail "unexpected loads"

let gemm_compute () =
  let n = 8 in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  let d = Placeholder.make "D" [ n; n ] f32 in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  Compute.make "s" ~iters:[ i; j; k ]
    ~body:(access d [ ix i; ix j ] +: (access a [ ix i; ix k ] *: access b [ ix k; ix j ]))
    ~dest:(d, [ ix i; ix j ]) ()

let test_compute () =
  let s = gemm_compute () in
  Alcotest.(check (list string)) "iters" [ "i"; "j"; "k" ] (Compute.iter_names s);
  Alcotest.(check (list string)) "reduction dims" [ "k" ] (Compute.reduction_dims s);
  Alcotest.(check bool) "is reduction" true (Compute.is_reduction s);
  Alcotest.(check string) "written" "D" (Compute.array_written s);
  Alcotest.(check (list string)) "read" [ "A"; "B"; "D" ] (Compute.arrays_read s);
  Alcotest.(check int) "trip count" 512 (Compute.trip_count s);
  Alcotest.(check int) "domain points" 512
    (Pom_poly.Feasible.count (Compute.domain s))

let test_compute_validation () =
  let n = 4 in
  let i = Var.make "i" 0 n in
  let a = Placeholder.make "A" [ n ] f32 in
  Alcotest.check_raises "unknown iterator"
    (Invalid_argument "Compute.make s: unknown iterator j") (fun () ->
      ignore
        (Compute.make "s" ~iters:[ i ]
           ~body:(access a [ ix_name "j" ])
           ~dest:(a, [ ix i ]) ()))

let test_schedule_constructors () =
  Alcotest.check_raises "split factor"
    (Invalid_argument "Schedule.split: factor must exceed 1") (fun () ->
      ignore (Schedule.split "s" "i" 1 "a" "b"));
  Alcotest.check_raises "skew unimodular"
    (Invalid_argument "Schedule.skew: inner factor must be 1 or -1 (unimodular)")
    (fun () -> ignore (Schedule.skew "s" "i" "j" 2 3 "a" "b"));
  Alcotest.(check bool) "pipeline is hardware" true
    (Schedule.is_hardware (Schedule.pipeline "s" "i" 1));
  Alcotest.(check bool) "tile is transformation" false
    (Schedule.is_hardware (Schedule.tile "s" "i" "j" 2 2 "a" "b" "c" "d"))

let test_func () =
  let f = Func.create "f" in
  let s = gemm_compute () in
  Func.add_compute f s;
  Alcotest.(check int) "one compute" 1 (List.length (Func.computes f));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Func f: duplicate compute s") (fun () ->
      Func.add_compute f s);
  Alcotest.check_raises "unknown compute in directive"
    (Invalid_argument "Func f: no compute t") (fun () ->
      Func.schedule f (Schedule.pipeline "t" "i" 1));
  Func.schedule f (Schedule.pipeline "s" "i" 1);
  Alcotest.(check int) "one directive" 1 (List.length (Func.directives f));
  Alcotest.(check bool) "no auto dse yet" false (Func.wants_auto_dse f);
  Func.schedule f Schedule.auto_dse;
  Alcotest.(check bool) "auto dse" true (Func.wants_auto_dse f)

let test_loc () =
  let f = Func.create "f" in
  Func.add_compute f (gemm_compute ());
  Func.schedule f (Schedule.pipeline "s" "i" 1);
  Func.schedule f (Schedule.unroll "s" "j" 4);
  (* 3 placeholders + 3 iterators + 1 compute + codegen = 8 decl lines *)
  Alcotest.(check int) "manual loc" 10 (Func.loc f);
  Alcotest.(check int) "auto loc" 9 (Func.loc_auto f)

let () =
  Alcotest.run "dsl"
    [
      ( "unit",
        [
          Alcotest.test_case "dtype" `Quick test_dtype;
          Alcotest.test_case "var" `Quick test_var;
          Alcotest.test_case "placeholder" `Quick test_placeholder;
          Alcotest.test_case "index to linexpr" `Quick test_index_to_linexpr;
          Alcotest.test_case "expression ops" `Quick test_expr_ops;
          Alcotest.test_case "expression substitution" `Quick test_expr_subst;
          Alcotest.test_case "compute" `Quick test_compute;
          Alcotest.test_case "compute validation" `Quick test_compute_validation;
          Alcotest.test_case "schedule constructors" `Quick test_schedule_constructors;
          Alcotest.test_case "func" `Quick test_func;
          Alcotest.test_case "lines of code" `Quick test_loc;
        ] );
    ]
