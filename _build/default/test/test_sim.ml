open Pom_dsl
open Pom_polyir
open Pom_sim
open Expr

let f32 = Dtype.p_float32

let test_memory_basics () =
  let a = Placeholder.make "A" [ 2; 3 ] f32 in
  let m = Memory.create_filled 0.0 [ a ] in
  Memory.set m "A" [ 1; 2 ] 5.0;
  Alcotest.(check (float 0.0)) "set/get" 5.0 (Memory.get m "A" [ 1; 2 ]);
  Alcotest.(check (float 0.0)) "other cell" 0.0 (Memory.get m "A" [ 0; 0 ]);
  Alcotest.check_raises "bounds"
    (Invalid_argument "Memory: index 3 out of bounds [0, 3)") (fun () ->
      ignore (Memory.get m "A" [ 0; 3 ]))

let test_memory_copy_diff () =
  let a = Placeholder.make "A" [ 4 ] f32 in
  let m = Memory.create [ a ] in
  let m' = Memory.copy m in
  Alcotest.(check (float 0.0)) "copies equal" 0.0 (Memory.max_diff m m');
  Memory.set m' "A" [ 0 ] (Memory.get m "A" [ 0 ] +. 2.5);
  Alcotest.(check (float 1e-9)) "diff detected" 2.5 (Memory.max_diff m m')

let test_memory_deterministic () =
  let a = Placeholder.make "A" [ 8 ] f32 in
  let m1 = Memory.create [ a ] and m2 = Memory.create [ a ] in
  Alcotest.(check (float 0.0)) "deterministic init" 0.0 (Memory.max_diff m1 m2)

let gemm_func n =
  let f = Func.create "gemm" in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  let d = Placeholder.make "D" [ n; n ] f32 in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  ignore
    (Func.compute f "s" ~iters:[ i; j; k ]
       ~body:
         (access d [ ix i; ix j ]
         +: (access a [ ix i; ix k ] *: access b [ ix k; ix j ]))
       ~dest:(d, [ ix i; ix j ]) ());
  f

let test_reference_gemm () =
  (* all-ones inputs: D accumulates exactly n per cell on top of 1 *)
  let n = 4 in
  let f = gemm_func n in
  let m = Memory.create_filled 1.0 (Func.placeholders f) in
  Interp.run_reference f m;
  Alcotest.(check (float 1e-6)) "D[0][0] = 1 + n" 5.0 (Memory.get m "D" [ 0; 0 ])

let test_divergence_zero_unscheduled () =
  let f = gemm_func 4 in
  Alcotest.(check (float 0.0)) "identity schedule" 0.0
    (Interp.divergence f (Prog.of_func f))

let test_divergence_zero_transformed () =
  let f = gemm_func 4 in
  Func.schedule f (Schedule.interchange "s" "i" "k");
  Func.schedule f (Schedule.tile "s" "j" "i" 2 2 "j0" "i0" "j1" "i1");
  Alcotest.(check (float 0.0)) "tiled+interchanged schedule" 0.0
    (Interp.divergence f (Prog.of_func f))

let test_structural_semantics () =
  (* ping-pong: run_structural alternates computes inside the time loop,
     while run_reference runs them sequentially -- they must differ when
     tsteps > 1 *)
  let f = Pom_workloads.Polybench.jacobi1d ~tsteps:3 10 in
  let ps = Func.placeholders f in
  let m_seq = Memory.create ps in
  let m_str = Memory.copy m_seq in
  Interp.run_reference f m_seq;
  Interp.run_structural f m_str;
  Alcotest.(check bool) "interleaving matters" true
    (Memory.max_diff m_seq m_str > 1e-9)

let test_stencil_divergence () =
  let f = Pom_workloads.Polybench.seidel ~tsteps:3 10 in
  Func.schedule f (Schedule.skew "s" "i" "j" 2 1 "is" "js");
  Alcotest.(check (float 0.0)) "skewed seidel" 0.0
    (Interp.divergence f (Prog.of_func f))

(* random schedule pipelines: divergence stays zero on an elementwise map
   and on gemm *)
let sched_gen =
  QCheck.Gen.(
    list_size (int_range 0 3)
      (oneofl [ `Swap01; `Swap12; `SplitLast 2; `SplitLast 3 ]))

let apply_random f steps =
  let counter = ref 0 in
  List.iter
    (fun step ->
      incr counter;
      let prog = Prog.of_func f in
      let order = Stmt_poly.loop_order (Prog.stmt prog "s") in
      let d k = List.nth order k in
      try
        match step with
        | `Swap01 when List.length order >= 2 ->
            Func.schedule f (Schedule.interchange "s" (d 0) (d 1))
        | `Swap12 when List.length order >= 3 ->
            Func.schedule f (Schedule.interchange "s" (d 1) (d 2))
        | `SplitLast factor ->
            let last = d (List.length order - 1) in
            Func.schedule f
              (Schedule.split "s" last factor
                 (Printf.sprintf "%s_o%d" last !counter)
                 (Printf.sprintf "%s_i%d" last !counter))
        | _ -> ()
      with _ -> ())
    steps

let prop_random_schedules_preserve_semantics =
  QCheck.Test.make ~name:"random schedules preserve gemm semantics" ~count:40
    (QCheck.make sched_gen) (fun steps ->
      let f = gemm_func 4 in
      apply_random f steps;
      Interp.divergence f (Prog.of_func f) = 0.0)

let () =
  Alcotest.run "sim"
    [
      ( "memory",
        [
          Alcotest.test_case "basics" `Quick test_memory_basics;
          Alcotest.test_case "copy and diff" `Quick test_memory_copy_diff;
          Alcotest.test_case "deterministic init" `Quick test_memory_deterministic;
        ] );
      ( "interp",
        [
          Alcotest.test_case "reference gemm" `Quick test_reference_gemm;
          Alcotest.test_case "unscheduled divergence" `Quick
            test_divergence_zero_unscheduled;
          Alcotest.test_case "transformed divergence" `Quick
            test_divergence_zero_transformed;
          Alcotest.test_case "structural vs sequential semantics" `Quick
            test_structural_semantics;
          Alcotest.test_case "skewed stencil divergence" `Quick
            test_stencil_divergence;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_schedules_preserve_semantics ]
      );
    ]
