open Pom_poly

let v = Linexpr.var

let c = Linexpr.const

let box dims_bounds =
  Basic_set.make
    (List.map (fun (d, _, _) -> d) dims_bounds)
    (List.concat_map
       (fun (d, lo, hi) ->
         [ Constr.ge (v d) (c lo); Constr.le (v d) (c (hi - 1)) ])
       dims_bounds)

(* Execute an AST forest, returning the trace of (stmt, domain-dim values)
   in execution order. *)
let execute forest =
  let env_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let env d =
    match Hashtbl.find_opt env_tbl d with Some x -> x | None -> raise Not_found
  in
  let trace = ref [] in
  let rec go = function
    | Ast.For { iter; lbs; ubs; body } ->
        let lb = Ast.eval_lb env lbs and ub = Ast.eval_ub env ubs in
        for x = lb to ub do
          Hashtbl.replace env_tbl iter x;
          List.iter go body
        done
    | Ast.If (guards, body) ->
        if List.for_all (Constr.sat env) guards then List.iter go body
    | Ast.User u ->
        trace :=
          (u.Ast.stmt, List.map (fun (_, iter) -> env iter) u.Ast.bindings)
          :: !trace
  in
  List.iter go forest;
  List.rev !trace

let points_of_trace name trace =
  List.filter_map (fun (s, pt) -> if s = name then Some pt else None) trace

let test_single_box_in_order () =
  let domain = box [ ("i", 0, 3); ("j", 0, 2) ] in
  let forest =
    Ast_build.build
      [ { Ast_build.name = "S"; domain; sched = Sched.initial [ "i"; "j" ] } ]
  in
  Alcotest.(check (list (list int))) "lexicographic visit"
    (Feasible.enumerate domain)
    (points_of_trace "S" (execute forest))

let test_interchange_changes_order () =
  let domain = box [ ("i", 0, 2); ("j", 0, 2) ] in
  let forest =
    Ast_build.build
      [ { Ast_build.name = "S"; domain; sched = Sched.initial [ "j"; "i" ] } ]
  in
  (* bindings are recorded in schedule order (j, i) *)
  Alcotest.(check (list (list int))) "column-major visit"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (points_of_trace "S" (execute forest))

let test_sequencing_by_consts () =
  let domain = box [ ("i", 0, 2) ] in
  let sched k = Sched.set_const (Sched.initial [ "i" ]) 0 k in
  let forest =
    Ast_build.build
      [
        { Ast_build.name = "B"; domain; sched = sched 1 };
        { Ast_build.name = "A"; domain; sched = sched 0 };
      ]
  in
  Alcotest.(check (list string)) "A's loop first, then B's"
    [ "A"; "A"; "B"; "B" ]
    (List.map fst (execute forest))

let test_fusion_interleaves () =
  let domain = box [ ("i", 0, 2) ] in
  let s0 = Sched.initial [ "i" ] in
  let s1 = Sched.set_const (Sched.initial [ "i" ]) 1 1 in
  let forest =
    Ast_build.build
      [
        { Ast_build.name = "A"; domain; sched = s0 };
        { Ast_build.name = "B"; domain; sched = s1 };
      ]
  in
  Alcotest.(check (list string)) "interleaved in one loop"
    [ "A"; "B"; "A"; "B" ]
    (List.map fst (execute forest))

let test_fused_different_bounds_guarded () =
  let d1 = box [ ("i", 0, 4) ] and d2 = box [ ("i", 2, 6) ] in
  let s0 = Sched.initial [ "i" ] in
  let s1 = Sched.set_const (Sched.initial [ "i" ]) 1 1 in
  let forest =
    Ast_build.build
      [
        { Ast_build.name = "A"; domain = d1; sched = s0 };
        { Ast_build.name = "B"; domain = d2; sched = s1 };
      ]
  in
  let trace = execute forest in
  Alcotest.(check (list (list int))) "A's own points"
    [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    (points_of_trace "A" trace);
  Alcotest.(check (list (list int))) "B's own points"
    [ [ 2 ]; [ 3 ]; [ 4 ]; [ 5 ] ]
    (points_of_trace "B" trace)

let test_strip_mined_covers_domain () =
  (* i = 5*o + r over 0 <= i < 13 (non-divisible) *)
  let domain =
    Basic_set.change_space ~new_dims:[ "o"; "r" ]
      ~bindings:[ ("i", Linexpr.add (Linexpr.term 5 "o") (v "r")) ]
      ~extra:[ Constr.ge (v "r") (c 0); Constr.le (v "r") (c 4) ]
      (box [ ("i", 0, 13) ])
  in
  let forest =
    Ast_build.build
      [ { Ast_build.name = "S"; domain; sched = Sched.initial [ "o"; "r" ] } ]
  in
  let originals =
    List.map
      (fun pt -> match pt with [ o; r ] -> (5 * o) + r | _ -> assert false)
      (points_of_trace "S" (execute forest))
  in
  Alcotest.(check (list int)) "all 13 original iterations, in order"
    (List.init 13 Fun.id) originals

let test_skewed_covers_domain () =
  let domain =
    Basic_set.change_space ~new_dims:[ "i"; "js" ]
      ~bindings:
        [ ("i", v "i"); ("j", Linexpr.sub (v "js") (Linexpr.term 2 "i")) ]
      (box [ ("i", 0, 4); ("j", 0, 4) ])
  in
  let forest =
    Ast_build.build
      [ { Ast_build.name = "S"; domain; sched = Sched.initial [ "js"; "i" ] } ]
  in
  Alcotest.(check int) "all 16 points" 16
    (List.length (points_of_trace "S" (execute forest)))

let test_depth_mismatch_rejected () =
  let d1 = box [ ("i", 0, 2) ] in
  let d2 = box [ ("i", 0, 2); ("j", 0, 2) ] in
  (* identical scalar prefixes but different loop structure *)
  Alcotest.check_raises "schedule error"
    (Ast_build.Schedule_error
       "statements with identical scalar prefixes have different depths")
    (fun () ->
      ignore
        (Ast_build.build
           [
             { Ast_build.name = "A"; domain = d1; sched = Sched.initial [ "i" ] };
             {
               Ast_build.name = "B";
               domain = d2;
               sched = Sched.initial [ "i"; "j" ];
             };
           ]))

let test_sched_domain_mismatch () =
  let d = box [ ("i", 0, 2) ] in
  Alcotest.check_raises "dims mismatch"
    (Ast_build.Schedule_error
       "statement S: schedule dims do not match domain dims") (fun () ->
      ignore
        (Ast_build.build
           [ { Ast_build.name = "S"; domain = d; sched = Sched.initial [ "j" ] } ]))

(* property: random 2-D box under a random dim permutation and strip-mine
   factor still executes exactly the domain's points *)
let prop_coverage =
  QCheck.Test.make ~name:"codegen covers the domain exactly" ~count:100
    QCheck.(triple (int_range 1 9) (int_range 1 9) (pair (int_range 2 4) bool))
    (fun (w, h, (factor, swap)) ->
      let base = box [ ("i", 0, w); ("j", 0, h) ] in
      let domain =
        Basic_set.change_space ~new_dims:[ "o"; "r"; "j" ]
          ~bindings:
            [
              ("i", Linexpr.add (Linexpr.term factor "o") (v "r"));
              ("j", v "j");
            ]
          ~extra:
            [ Constr.ge (v "r") (c 0); Constr.le (v "r") (c (factor - 1)) ]
          base
      in
      let order = if swap then [ "j"; "o"; "r" ] else [ "o"; "j"; "r" ] in
      let forest =
        Ast_build.build
          [ { Ast_build.name = "S"; domain; sched = Sched.initial order } ]
      in
      let visited =
        List.sort compare
          (List.map
             (fun pt ->
               (* recover (i, j) from bindings in schedule order *)
               let assoc = List.combine order pt in
               ( (factor * List.assoc "o" assoc) + List.assoc "r" assoc,
                 List.assoc "j" assoc ))
             (points_of_trace "S" (execute forest)))
      in
      let expected =
        List.sort compare
          (List.map
             (fun pt -> match pt with [ i; j ] -> (i, j) | _ -> assert false)
             (Feasible.enumerate base))
      in
      visited = expected)

(* property: for random two-statement programs (random box domains, scalar
   constants, and dimension orders), the emitted trace visits every domain
   point of each statement exactly once, in non-decreasing schedule-time
   order *)
let two_stmt_gen =
  QCheck.Gen.(
    let dims_gen = oneofl [ [ "i"; "j" ]; [ "j"; "i" ] ] in
    let box_gen = pair (int_range 1 4) (int_range 1 4) in
    let consts_gen = triple (int_range 0 1) (int_range 0 1) (int_range 0 1) in
    triple (pair dims_gen box_gen) (pair dims_gen box_gen) (pair consts_gen consts_gen))

let time_vector sched point =
  (* interleave scalar constants with the bound dim values *)
  let rec go items pt =
    match (items, pt) with
    | Sched.Const c :: rest, _ -> c :: go rest pt
    | Sched.Dim _ :: rest, v :: pt -> v :: go rest pt
    | [], [] -> []
    | _ -> assert false
  in
  go (Sched.items sched) point

let rec lex_leq a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> true
  | x :: a', y :: b' -> x < y || (x = y && lex_leq a' b')

let prop_trace_in_schedule_order =
  QCheck.Test.make ~name:"trace follows lexicographic schedule time" ~count:150
    (QCheck.make two_stmt_gen)
    (fun ((d1, (w1, h1)), (d2, (w2, h2)), ((a0, a1, a2), (b0, b1, b2))) ->
      let dom w h = box [ ("i", 0, w); ("j", 0, h) ] in
      let sched order (c0, c1, c2) =
        Sched.set_const
          (Sched.set_const (Sched.set_const (Sched.initial order) 0 c0) 1 c1)
          2 c2
      in
      let s1 = sched d1 (a0, a1, a2) and s2 = sched d2 (b0, b1, b2) in
      try
        let forest =
          Ast_build.build
            [
              { Ast_build.name = "A"; domain = dom w1 h1; sched = s1 };
              { Ast_build.name = "B"; domain = dom w2 h2; sched = s2 };
            ]
        in
        let trace = execute forest in
        let count_a = List.length (points_of_trace "A" trace) in
        let count_b = List.length (points_of_trace "B" trace) in
        let times =
          List.map
            (fun (stmt, pt) ->
              time_vector (if stmt = "A" then s1 else s2) pt)
            trace
        in
        let rec sorted = function
          | x :: (y :: _ as rest) -> lex_leq x y && sorted rest
          | _ -> true
        in
        count_a = w1 * h1 && count_b = w2 * h2 && sorted times
      with Ast_build.Schedule_error _ ->
        (* identical scalar prefixes with clashing structure are rejected,
           which is also correct behaviour *)
        true)

let () =
  Alcotest.run "ast_build"
    [
      ( "unit",
        [
          Alcotest.test_case "single box in order" `Quick test_single_box_in_order;
          Alcotest.test_case "interchange" `Quick test_interchange_changes_order;
          Alcotest.test_case "sequencing by scalar constants" `Quick
            test_sequencing_by_consts;
          Alcotest.test_case "fusion interleaves" `Quick test_fusion_interleaves;
          Alcotest.test_case "fused different bounds get guards" `Quick
            test_fused_different_bounds_guarded;
          Alcotest.test_case "strip-mined coverage (non-divisible)" `Quick
            test_strip_mined_covers_domain;
          Alcotest.test_case "skewed coverage" `Quick test_skewed_covers_domain;
          Alcotest.test_case "depth mismatch rejected" `Quick
            test_depth_mismatch_rejected;
          Alcotest.test_case "schedule/domain dim mismatch" `Quick
            test_sched_domain_mismatch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_coverage; prop_trace_in_schedule_order ] );
    ]
