open Pom_poly

let test_initial () =
  let s = Sched.initial [ "i"; "j" ] in
  Alcotest.(check string) "2d+1 form" "[0, i, 0, j, 0]" (Sched.to_string s);
  Alcotest.(check int) "depth" 2 (Sched.depth s);
  Alcotest.(check (list string)) "dims" [ "i"; "j" ] (Sched.dims s)

let test_of_items_validation () =
  Alcotest.check_raises "not alternating"
    (Invalid_argument "Sched.of_items: not an alternating (2d+1) sequence")
    (fun () -> ignore (Sched.of_items [ Sched.Dim "i"; Sched.Const 0 ]));
  Alcotest.check_raises "missing trailing const"
    (Invalid_argument "Sched.of_items: not an alternating (2d+1) sequence")
    (fun () -> ignore (Sched.of_items [ Sched.Const 0; Sched.Dim "i" ]))

let test_levels () =
  let s = Sched.initial [ "i"; "j"; "k" ] in
  Alcotest.(check string) "dim at 2" "j" (Sched.dim_at s 2);
  Alcotest.(check (option int)) "level of k" (Some 3) (Sched.level_of s "k");
  Alcotest.(check (option int)) "level of absent" None (Sched.level_of s "z")

let test_consts () =
  let s = Sched.initial [ "i"; "j" ] in
  let s = Sched.set_const s 0 3 in
  let s = Sched.set_const s 2 7 in
  Alcotest.(check string) "consts set" "[3, i, 0, j, 7]" (Sched.to_string s);
  Alcotest.(check int) "const at 0" 3 (Sched.const_at s 0);
  Alcotest.(check int) "const at 1" 0 (Sched.const_at s 1);
  Alcotest.(check int) "const at 2" 7 (Sched.const_at s 2)

let test_swap () =
  let s = Sched.swap_levels (Sched.initial [ "i"; "j"; "k" ]) 1 3 in
  Alcotest.(check (list string)) "swapped" [ "k"; "j"; "i" ] (Sched.dims s)

let test_replace_dim () =
  let s =
    Sched.replace_dim (Sched.initial [ "i"; "j" ]) "i"
      [ Sched.Dim "i0"; Sched.Const 0; Sched.Dim "i1" ]
  in
  Alcotest.(check string) "strip-mined" "[0, i0, 0, i1, 0, j, 0]"
    (Sched.to_string s);
  Alcotest.(check int) "depth grew" 3 (Sched.depth s)

let test_rename () =
  let s = Sched.rename_dim (Sched.initial [ "i"; "j" ]) "j" "js" in
  Alcotest.(check (list string)) "renamed" [ "i"; "js" ] (Sched.dims s)

let test_lex_compare () =
  let a = Sched.set_const (Sched.initial [ "i" ]) 0 0 in
  let b = Sched.set_const (Sched.initial [ "i" ]) 0 1 in
  Alcotest.(check bool) "a before b" true (Sched.lex_compare a b < 0);
  Alcotest.(check bool) "b after a" true (Sched.lex_compare b a > 0);
  let a1 = Sched.set_const a 1 2 in
  Alcotest.(check bool) "inner const orders" true (Sched.lex_compare a a1 < 0)

let () =
  Alcotest.run "sched"
    [
      ( "unit",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "well-formedness" `Quick test_of_items_validation;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "scalar constants" `Quick test_consts;
          Alcotest.test_case "interchange" `Quick test_swap;
          Alcotest.test_case "replace (strip-mine)" `Quick test_replace_dim;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "lexicographic order" `Quick test_lex_compare;
        ] );
    ]
