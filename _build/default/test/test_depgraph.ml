open Pom_dsl
open Pom_depgraph
open Expr

let f32 = Dtype.p_float32

(* the four computes of Fig. 8: S1: A=A*b; S2: B=A+B; S3: C=A+C; S4: D=B*C *)
let fig8 () =
  let n = 8 in
  let mk s = Var.make s 0 n in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  let c = Placeholder.make "C" [ n; n ] f32 in
  let d = Placeholder.make "D" [ n; n ] f32 in
  let f = Func.create "fig8" in
  let i = mk "i" and j = mk "j" and k = mk "k" in
  ignore
    (Func.compute f "S1" ~iters:[ i; j; k ]
       ~body:(access a [ ix i; ix j ] *: fconst 2.0)
       ~dest:(a, [ ix i; ix j ]) ());
  ignore
    (Func.compute f "S2" ~iters:[ i; j; k ]
       ~body:(access a [ ix i; ix j ] +: access b [ ix i; ix j ])
       ~dest:(b, [ ix i; ix j ]) ());
  ignore
    (Func.compute f "S3" ~iters:[ i; j; k ]
       ~body:(access a [ ix i; ix j ] +: access c [ ix i; ix j ])
       ~dest:(c, [ ix i; ix j ]) ());
  ignore
    (Func.compute f "S4" ~iters:[ i; j; k ]
       ~body:(access b [ ix i; ix k ] *: access c [ ix k; ix j ])
       ~dest:(d, [ ix i; ix j ]) ());
  f

let test_coarse_graph () =
  let g = Graph.build (fig8 ()) in
  Alcotest.(check (list string)) "program order" [ "S1"; "S2"; "S3"; "S4" ]
    (Graph.order g);
  Alcotest.(check (list string)) "S1 successors" [ "S2"; "S3" ]
    (Graph.successors g "S1");
  Alcotest.(check (list string)) "S4 predecessors" [ "S2"; "S3" ]
    (Graph.predecessors g "S4")

let test_data_paths () =
  let g = Graph.build (fig8 ()) in
  Alcotest.(check (list (list string))) "the two Fig. 8 paths"
    [ [ "S1"; "S2"; "S4" ]; [ "S1"; "S3"; "S4" ] ]
    (Graph.data_paths g)

let test_edge_kinds () =
  let g = Graph.build (fig8 ()) in
  let kinds =
    List.filter_map
      (fun (e : Graph.edge) ->
        if e.Graph.src = "S1" && e.Graph.dst = "S2" then Some e.Graph.kind
        else None)
      (Graph.edges g)
  in
  (* S1 writes A read by S2 (RAW); no WAR/WAW between them on A or B *)
  Alcotest.(check bool) "raw present" true (List.mem Graph.Raw kinds)

let gemm_node () =
  let f = fig8 () in
  (Graph.node (Graph.build f) "S4").Graph.fine

(* Fig. 8's fine-grained result: S4 has reduction dimension k and the GEMM
   accumulation D(i,j) gives no self-dependence box because D is not read
   -- use a true accumulating compute instead *)
let accumulating () =
  let n = 8 in
  let mk s = Var.make s 0 n in
  let d = Placeholder.make "D" [ n; n ] f32 in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let f = Func.create "acc" in
  let i = mk "i" and j = mk "j" and k = mk "k" in
  ignore
    (Func.compute f "s" ~iters:[ i; j; k ]
       ~body:(access d [ ix i; ix j ] +: access a [ ix i; ix k ])
       ~dest:(d, [ ix i; ix j ]) ());
  Finegrain.analyze (Func.find_compute f "s")

let test_finegrain_reduction () =
  let fine = gemm_node () in
  Alcotest.(check (list string)) "reduction dim" [ "k" ]
    fine.Finegrain.reduction_dims;
  Alcotest.(check int) "no self dep (D not read)" 0
    (List.length fine.Finegrain.self_deps)

let test_finegrain_accumulation () =
  let fine = accumulating () in
  Alcotest.(check bool) "has self deps" true (fine.Finegrain.self_deps <> []);
  (* (i, j, k) order: dependence carried at k = innermost -> not free *)
  Alcotest.(check bool) "innermost carried" false
    (Finegrain.innermost_free fine ~order:[ "i"; "j"; "k" ]);
  (* (k, i, j): carried at outer k -> innermost free *)
  Alcotest.(check bool) "k-outer frees innermost" true
    (Finegrain.innermost_free fine ~order:[ "k"; "i"; "j" ]);
  Alcotest.(check (option int)) "distance at k" (Some 1)
    (Finegrain.carried_distance_at fine ~order:[ "k"; "i"; "j" ] "k");
  Alcotest.(check bool) "legal order" true
    (Finegrain.legal_order fine ~order:[ "k"; "i"; "j" ])

let test_hints_gemm () =
  match Hints.suggest (accumulating ()) with
  | Hints.Reorder order ->
      (* any innermost-free legal order is acceptable; k must not be last *)
      Alcotest.(check bool) "k not innermost" true
        (List.nth order 2 <> "k")
  | other ->
      Alcotest.failf "expected reorder, got %a" Hints.pp other

let test_hints_keep () =
  (* s(j) accumulation over (i, j): carried at i = outer level 1 when the
     order is (i, j)?  No: dest s(j), reduction dim i, dep (1, 0) -> carried
     at level 1, innermost j free -> Keep *)
  let n = 8 in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n in
  let s = Placeholder.make "s" [ n ] f32 in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let f = Func.create "g" in
  ignore
    (Func.compute f "c" ~iters:[ i; j ]
       ~body:(access s [ ix j ] +: access a [ ix i; ix j ])
       ~dest:(s, [ ix j ]) ());
  match Hints.suggest (Finegrain.analyze (Func.find_compute f "c")) with
  | Hints.Keep -> ()
  | other -> Alcotest.failf "expected keep, got %a" Hints.pp other

let test_hints_seidel_skew () =
  let func = Pom_workloads.Polybench.seidel ~tsteps:4 10 in
  let node = Graph.node (Graph.build func) "s" in
  match Hints.suggest node.Graph.fine with
  | Hints.Skew_hint { factor; _ } ->
      Alcotest.(check bool) "positive factor" true (factor >= 1)
  | other -> Alcotest.failf "expected skew hint, got %a" Hints.pp other

let test_fusion_violates () =
  (* ping-pong jacobi: full-depth positional fusion is illegal *)
  let func = Pom_workloads.Polybench.jacobi1d ~tsteps:4 16 in
  let s0 = Func.find_compute func "s0" and s1 = Func.find_compute func "s1" in
  Alcotest.(check bool) "ping-pong full fusion violates" true
    (Finegrain.fusion_violates s0 s1);
  (* BICG: the two statements share no data -> fusion is fine *)
  let bicg = Pom_workloads.Polybench.bicg 16 in
  Alcotest.(check bool) "bicg fusion legal" false
    (Finegrain.fusion_violates
       (Func.find_compute bicg "s_s")
       (Func.find_compute bicg "s_q"))

let test_free_orders () =
  let fine = accumulating () in
  let frees = Hints.free_orders fine in
  Alcotest.(check bool) "some free order exists" true (frees <> []);
  List.iter
    (fun order ->
      Alcotest.(check bool) "each is innermost-free" true
        (Finegrain.innermost_free fine ~order))
    frees

let () =
  Alcotest.run "depgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "coarse-grained graph" `Quick test_coarse_graph;
          Alcotest.test_case "data paths (Fig. 8)" `Quick test_data_paths;
          Alcotest.test_case "edge kinds" `Quick test_edge_kinds;
        ] );
      ( "finegrain",
        [
          Alcotest.test_case "reduction dimension" `Quick test_finegrain_reduction;
          Alcotest.test_case "accumulation dependence" `Quick
            test_finegrain_accumulation;
          Alcotest.test_case "fusion violation check" `Quick test_fusion_violates;
        ] );
      ( "hints",
        [
          Alcotest.test_case "gemm wants reorder" `Quick test_hints_gemm;
          Alcotest.test_case "outer-carried keeps order" `Quick test_hints_keep;
          Alcotest.test_case "seidel wants skew" `Quick test_hints_seidel_skew;
          Alcotest.test_case "free orders" `Quick test_free_orders;
        ] );
    ]
