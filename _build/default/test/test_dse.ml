open Pom_dsl
open Pom_dse
open Pom_workloads

let find_plan (s : Stage1.t) name =
  List.find (fun (p : Stage1.node_plan) -> p.Stage1.compute = name) s.Stage1.nodes

let test_stage1_gemm_reorders () =
  let s = Stage1.run (Polybench.gemm 64) in
  let p = find_plan s "s" in
  Alcotest.(check bool) "not tight" false p.Stage1.tight;
  Alcotest.(check bool) "k moved off innermost" true
    (List.nth p.Stage1.final_order 2 <> "k")

let test_stage1_bicg_split_interchange_merge () =
  (* the Fig. 10 sequence: distribute, interchange s_q, re-fuse *)
  let s = Stage1.run (Polybench.bicg 64) in
  let pq = find_plan s "s_q" and ps = find_plan s "s_s" in
  Alcotest.(check (list string)) "s_q interchanged" [ "j"; "i" ]
    pq.Stage1.final_order;
  Alcotest.(check (list string)) "s_s kept" [ "i"; "j" ] ps.Stage1.final_order;
  let fused =
    List.exists
      (fun d -> match d with Schedule.Fuse _ -> true | _ -> false)
      s.Stage1.directives
  in
  Alcotest.(check bool) "re-fused" true fused;
  Alcotest.(check bool) "several analysis rounds" true (s.Stage1.iterations >= 2)

let test_stage1_jacobi_keeps_user_fusion () =
  (* ping-pong computes have cross dependences: the time-loop fusion must
     be preserved, not distributed *)
  let s = Stage1.run (Polybench.jacobi1d ~tsteps:8 64) in
  let fused =
    List.exists
      (fun d ->
        match d with Schedule.After _ | Schedule.Fuse _ -> true | _ -> false)
      s.Stage1.directives
  in
  Alcotest.(check bool) "fusion preserved" true fused

let test_stage1_seidel_skews () =
  let s = Stage1.run (Polybench.seidel ~tsteps:4 64) in
  let p = find_plan s "s" in
  Alcotest.(check bool) "skewed" true p.Stage1.skewed;
  let has_skew =
    List.exists
      (fun d -> match d with Schedule.Skew _ -> true | _ -> false)
      s.Stage1.directives
  in
  Alcotest.(check bool) "skew directive emitted" true has_skew

let test_stage1_transformed_programs_are_correct () =
  List.iter
    (fun func ->
      let s = Stage1.run func in
      let prog =
        List.fold_left Pom_polyir.Prog.apply
          (Pom_polyir.Prog.of_func_unscheduled func)
          s.Stage1.directives
      in
      Alcotest.(check (float 0.0))
        (Func.name func ^ " stage1 preserves semantics")
        0.0
        (Pom_sim.Interp.divergence func prog))
    [
      Polybench.gemm 8;
      Polybench.bicg 8;
      Polybench.gesummv 8;
      Polybench.seidel ~tsteps:3 10;
      Polybench.jacobi1d ~tsteps:3 10;
    ]

let test_stage2_improves_and_fits () =
  let func = Polybench.gemm 256 in
  let stage1 = Stage1.run func in
  let r = Stage2.run func stage1 in
  let baseline = Pom_hls.Report.baseline_latency func in
  Alcotest.(check bool) "feasible" true r.Stage2.report.Pom_hls.Report.feasible;
  Alcotest.(check bool) "speedup > 50x" true
    (Pom_hls.Report.speedup ~baseline r.Stage2.report > 50.0);
  Alcotest.(check bool) "terminates" true (r.Stage2.iterations < 60)

let test_stage2_respects_scaled_device () =
  let func = Polybench.mm2 512 in
  let full = Stage2.run func (Stage1.run func) in
  let quarter_device = Pom_hls.Device.scale 0.25 Pom_hls.Device.xc7z020 in
  let quarter = Stage2.run ~device:quarter_device func (Stage1.run func) in
  Alcotest.(check bool) "quarter fits quarter" true
    (Pom_hls.Resource.fits quarter_device
       quarter.Stage2.report.Pom_hls.Report.usage);
  Alcotest.(check bool) "full uses more than quarter" true
    (full.Stage2.report.Pom_hls.Report.usage.Pom_hls.Resource.dsp
    >= quarter.Stage2.report.Pom_hls.Report.usage.Pom_hls.Resource.dsp);
  Alcotest.(check bool) "full is at least as fast" true
    (full.Stage2.report.Pom_hls.Report.latency
    <= quarter.Stage2.report.Pom_hls.Report.latency)

let test_stage2_tile_vectors () =
  let func = Polybench.gemm 256 in
  let r = Stage2.run func (Stage1.run func) in
  match List.assoc_opt "s" r.Stage2.tile_vectors with
  | Some v ->
      Alcotest.(check int) "vector per level" 3 (List.length v);
      Alcotest.(check bool) "some parallelism" true
        (List.fold_left ( * ) 1 v > 1)
  | None -> Alcotest.fail "missing tile vector"

let test_engine_end_to_end_correct () =
  List.iter
    (fun func ->
      let o = Engine.run func in
      Alcotest.(check (float 0.0))
        (Func.name func ^ " DSE output preserves semantics")
        0.0
        (Pom_sim.Interp.divergence func o.Engine.result.Stage2.prog))
    [
      Polybench.gemm 8;
      Polybench.bicg 8;
      Polybench.mm2 8;
      Polybench.seidel ~tsteps:3 10;
      Polybench.jacobi2d ~tsteps:2 8;
      Image.blur 12;
    ]

let test_engine_bottleneck_balance () =
  (* 3MM: the bottleneck-oriented search must optimize all three products,
     unlike the greedy baseline *)
  let func = Polybench.mm3 512 in
  let o = Engine.run func in
  let pars =
    List.map
      (fun (_, v) -> List.fold_left ( * ) 1 v)
      o.Engine.result.Stage2.tile_vectors
  in
  Alcotest.(check int) "three vectors" 3 (List.length pars);
  List.iter
    (fun p -> Alcotest.(check bool) "every loop optimized" true (p > 1))
    pars

let test_custom_strategy_group () =
  (* a conservative user strategy (only doubling, capped trials) still
     terminates and produces a feasible design *)
  let func = Polybench.gemm 256 in
  let r =
    Stage2.run ~steps:(fun p -> [ p * 2 ]) func (Stage1.run func)
  in
  Alcotest.(check bool) "feasible" true r.Stage2.report.Pom_hls.Report.feasible;
  (* a dense strategy explores at least as well *)
  let dense =
    Stage2.run ~steps:(fun p -> [ p * 2; p * 3 / 2; p + 1 ]) func (Stage1.run func)
  in
  Alcotest.(check bool) "dense at least as fast" true
    (dense.Stage2.report.Pom_hls.Report.latency
    <= r.Stage2.report.Pom_hls.Report.latency)

let test_trace_records_decisions () =
  let func = Polybench.gemm 256 in
  let r = Stage2.run func (Stage1.run func) in
  Alcotest.(check bool) "trace non-empty" true (r.Stage2.trace <> []);
  Alcotest.(check bool) "records acceptance" true
    (List.exists
       (fun line ->
         String.length line > 8
         &&
         let re = "accepted" in
         let rec has i =
           i + String.length re <= String.length line
           && (String.sub line i (String.length re) = re || has (i + 1))
         in
         has 0)
       r.Stage2.trace)

let test_realize_cases () =
  (* pipeline only *)
  let r1 = Stage2.realize "s" [ "i"; "j" ] [ 16; 16 ] 1 in
  Alcotest.(check (list int)) "par 1 vector" [ 1; 1 ] r1.Stage2.tile_vector;
  (* split innermost *)
  let r4 = Stage2.realize "s" [ "i"; "j" ] [ 16; 16 ] 4 in
  Alcotest.(check (list int)) "par 4 vector" [ 1; 4 ] r4.Stage2.tile_vector;
  (* spill into the second dim *)
  let r64 = Stage2.realize "s" [ "i"; "j" ] [ 16; 16 ] 64 in
  Alcotest.(check (list int)) "par 64 vector" [ 4; 16 ] r64.Stage2.tile_vector;
  (* three-deep prefers a balanced [., 2, 16] split *)
  let r32 = Stage2.realize "s" [ "i"; "j"; "k" ] [ 64; 64; 64 ] 32 in
  Alcotest.(check (list int)) "deep balanced" [ 1; 2; 16 ] r32.Stage2.tile_vector

let () =
  Alcotest.run "dse"
    [
      ( "stage1",
        [
          Alcotest.test_case "gemm reorders" `Quick test_stage1_gemm_reorders;
          Alcotest.test_case "bicg split-interchange-merge" `Quick
            test_stage1_bicg_split_interchange_merge;
          Alcotest.test_case "jacobi keeps fusion" `Quick
            test_stage1_jacobi_keeps_user_fusion;
          Alcotest.test_case "seidel skews" `Quick test_stage1_seidel_skews;
          Alcotest.test_case "stage1 semantics" `Slow
            test_stage1_transformed_programs_are_correct;
        ] );
      ( "stage2",
        [
          Alcotest.test_case "improves and fits" `Quick test_stage2_improves_and_fits;
          Alcotest.test_case "respects scaled device" `Quick
            test_stage2_respects_scaled_device;
          Alcotest.test_case "tile vectors" `Quick test_stage2_tile_vectors;
          Alcotest.test_case "realize cases" `Quick test_realize_cases;
          Alcotest.test_case "custom strategy group" `Quick
            test_custom_strategy_group;
          Alcotest.test_case "decision trace" `Quick test_trace_records_decisions;
        ] );
      ( "engine",
        [
          Alcotest.test_case "end-to-end semantics" `Slow
            test_engine_end_to_end_correct;
          Alcotest.test_case "bottleneck balance on 3MM" `Quick
            test_engine_bottleneck_balance;
        ] );
    ]
