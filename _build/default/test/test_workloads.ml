open Pom_dsl
open Pom_workloads

let test_polybench_shapes () =
  Alcotest.(check int) "gemm computes" 1
    (List.length (Func.computes (Polybench.gemm 64)));
  Alcotest.(check int) "bicg computes" 2
    (List.length (Func.computes (Polybench.bicg 64)));
  Alcotest.(check int) "gesummv computes" 3
    (List.length (Func.computes (Polybench.gesummv 64)));
  Alcotest.(check int) "2mm computes" 2
    (List.length (Func.computes (Polybench.mm2 64)));
  Alcotest.(check int) "3mm computes" 3
    (List.length (Func.computes (Polybench.mm3 64)))

let test_by_name_complete () =
  Alcotest.(check int) "fourteen polybench kernels" 14
    (List.length Polybench.by_name);
  List.iter
    (fun (name, build) ->
      let f = build 64 in
      Alcotest.(check bool)
        (name ^ " has computes")
        true
        (Func.computes f <> []))
    Polybench.by_name

let test_stencils_are_structural () =
  List.iter
    (fun f ->
      let has_after =
        List.exists
          (fun d ->
            match d with Schedule.After _ | Schedule.Fuse _ -> true | _ -> false)
          (Func.directives f)
      in
      Alcotest.(check bool)
        (Func.name f ^ " ping-pong fusion")
        true has_after)
    [ Polybench.jacobi1d 64; Polybench.jacobi2d 64; Polybench.heat1d 64 ]

let test_seidel_is_inplace () =
  let f = Polybench.seidel 64 in
  let s = Func.find_compute f "s" in
  Alcotest.(check string) "writes A" "A" (Compute.array_written s);
  Alcotest.(check bool) "reads A" true (List.mem "A" (Compute.arrays_read s))

let test_image_kernels () =
  Alcotest.(check int) "edge detect stages" 3
    (List.length (Func.computes (Image.edge_detect 64)));
  Alcotest.(check int) "gaussian single" 1
    (List.length (Func.computes (Image.gaussian 64)));
  Alcotest.(check int) "blur stages" 2
    (List.length (Func.computes (Image.blur 64)));
  (* all image kernels are 3-deep (channel, y, x) *)
  List.iter
    (fun (c : Compute.t) ->
      Alcotest.(check int) "3 loops" 3 (List.length c.Compute.iters))
    (Func.computes (Image.gaussian 64))

let test_vgg16 () =
  let f = Dnn.vgg16 () in
  Alcotest.(check int) "13 critical loops" 13 (Dnn.critical_loops f);
  (* 13 convs + 5 pools *)
  Alcotest.(check int) "18 computes" 18 (List.length (Func.computes f))

let test_resnet18 () =
  let f = Dnn.resnet18 () in
  Alcotest.(check int) "20 critical loops" 20 (Dnn.critical_loops f);
  (* 20 convs + 8 residual adds *)
  Alcotest.(check int) "28 computes" 28 (List.length (Func.computes f))

let test_dnn_graph_is_connected_chain () =
  let g = Pom_depgraph.Graph.build (Dnn.vgg16 ()) in
  (* every compute except the first consumes a previous output *)
  List.iter
    (fun name ->
      if name <> "conv1" then
        Alcotest.(check bool)
          (name ^ " has a producer")
          true
          (Pom_depgraph.Graph.predecessors g name <> []))
    (Pom_depgraph.Graph.order g)

let test_conv_layer_semantics () =
  (* one tiny conv: all-ones weights and inputs, zero output, kernel 3x3,
     1 input channel: every interior output pixel accumulates 9 *)
  let func = Func.create "tiny" in
  let input = Placeholder.make "in" [ 1; 6; 6 ] Dtype.p_float32 in
  let out =
    Dnn.conv_layer func ~input
      { Dnn.label = "c"; in_channels = 1; out_channels = 1; spatial = 4; kernel = 3 }
  in
  let mem = Pom_sim.Memory.create_filled 1.0 (Func.placeholders func) in
  (* zero the output first (it is accumulated into) *)
  for i = 0 to 5 do
    for j = 0 to 5 do
      Pom_sim.Memory.set mem out.Placeholder.name [ 0; i; j ] 0.0
    done
  done;
  Pom_sim.Interp.run_reference func mem;
  Alcotest.(check (float 1e-6)) "9-point accumulation" 9.0
    (Pom_sim.Memory.get mem out.Placeholder.name [ 0; 1; 1 ])

let test_trmm_triangular_domain () =
  let f = Polybench.trmm 8 in
  let s = Func.find_compute f "s" in
  Alcotest.(check bool) "has where clause" true (s.Compute.where <> []);
  (* k > i over an 8-cube: 28 (i,k) pairs x 8 j values *)
  Alcotest.(check int) "exact triangular count" 224 (Compute.trip_count s);
  Alcotest.(check int) "domain agrees" 224
    (Pom_poly.Feasible.count (Compute.domain s))

let test_trmm_estimated_count_large () =
  let f = Polybench.trmm 1024 in
  let s = Func.find_compute f "s" in
  (* estimate: box / 2 *)
  Alcotest.(check int) "magnitude estimate" (1024 * 1024 * 1024 / 2)
    (Compute.trip_count s)

let test_gemm_typed () =
  let fi = Polybench.gemm_typed Dtype.p_int16 8 in
  let c = Func.find_compute fi "s" in
  Alcotest.(check bool) "dtype propagates" true
    (Dtype.equal (fst c.Compute.dest).Placeholder.dtype Dtype.p_int16)

let test_new_kernels_structure () =
  Alcotest.(check int) "atax computes" 2
    (List.length (Func.computes (Polybench.atax 16)));
  Alcotest.(check int) "mvt computes" 2
    (List.length (Func.computes (Polybench.mvt 16)));
  Alcotest.(check int) "syrk computes" 1
    (List.length (Func.computes (Polybench.syrk 16)));
  Alcotest.(check int) "doitgen computes" 2
    (List.length (Func.computes (Polybench.doitgen ~np:4 8)))

let test_workload_sizes_scale () =
  (* trip counts grow with the cube for gemm *)
  let tc n =
    Compute.trip_count (Func.find_compute (Polybench.gemm n) "s")
  in
  Alcotest.(check int) "64^3" (64 * 64 * 64) (tc 64);
  Alcotest.(check int) "scaling" (8 * tc 64) (tc 128)

let () =
  Alcotest.run "workloads"
    [
      ( "polybench",
        [
          Alcotest.test_case "kernel shapes" `Quick test_polybench_shapes;
          Alcotest.test_case "registry" `Quick test_by_name_complete;
          Alcotest.test_case "ping-pong structure" `Quick test_stencils_are_structural;
          Alcotest.test_case "seidel in-place" `Quick test_seidel_is_inplace;
          Alcotest.test_case "sizes scale" `Quick test_workload_sizes_scale;
          Alcotest.test_case "trmm triangular domain" `Quick
            test_trmm_triangular_domain;
          Alcotest.test_case "trmm estimated count" `Quick
            test_trmm_estimated_count_large;
          Alcotest.test_case "typed gemm" `Quick test_gemm_typed;
          Alcotest.test_case "new kernel structure" `Quick
            test_new_kernels_structure;
        ] );
      ( "image",
        [ Alcotest.test_case "image kernels" `Quick test_image_kernels ] );
      ( "dnn",
        [
          Alcotest.test_case "vgg16 structure" `Quick test_vgg16;
          Alcotest.test_case "resnet18 structure" `Quick test_resnet18;
          Alcotest.test_case "dependence chain" `Quick test_dnn_graph_is_connected_chain;
          Alcotest.test_case "conv semantics" `Quick test_conv_layer_semantics;
        ] );
    ]
