open Pom_baselines
open Pom_workloads

let speedup func (r : Pom_hls.Report.t) =
  Pom_hls.Report.speedup ~baseline:(Pom_hls.Report.baseline_latency func) r

let test_pluto_no_pragmas () =
  let func = Polybench.gemm 256 in
  let r = Pluto.run func in
  Alcotest.(check (list (pair int int))) "no pipelines" []
    r.Pluto.report.Pom_hls.Report.iis;
  (* CPU-oriented tiling yields no FPGA speedup *)
  Alcotest.(check bool) "about 1x" true
    (speedup func r.Pluto.report < 2.0)

let test_pluto_tiles () =
  let func = Polybench.gemm 256 in
  let r = Pluto.run func in
  let has_split =
    List.exists
      (fun d -> match d with Pom_dsl.Schedule.Split _ -> true | _ -> false)
      r.Pluto.directives
  in
  Alcotest.(check bool) "tiling applied" true has_split

let test_polsca_dependence_limited () =
  let func = Polybench.gemm 4096 in
  let r = Polsca.run func in
  (* pipelining without restructuring: II set by the reduction chain *)
  let ii = List.assoc 0 r.Polsca.report.Pom_hls.Report.iis in
  Alcotest.(check int) "II = recurrence" 7 ii;
  let s = speedup func r.Polsca.report in
  Alcotest.(check bool) "about 2.3x" true (s > 1.5 && s < 4.0)

let test_polsca_no_partitions () =
  let func = Polybench.gemm 4096 in
  let r = Polsca.run func in
  let has_partition =
    List.exists
      (fun d -> match d with Pom_dsl.Schedule.Partition _ -> true | _ -> false)
      r.Polsca.directives
  in
  Alcotest.(check bool) "no partitioning" false has_partition

let test_scalehls_beats_polsca_on_gemm () =
  let func = Polybench.gemm 1024 in
  let s = Scalehls.run func in
  let p = Polsca.run (Polybench.gemm 1024) in
  Alcotest.(check bool) "scalehls ahead of polsca" true
    (speedup func s.Scalehls.report > speedup func p.Polsca.report)

let test_scalehls_bicg_tight () =
  (* applying one interchange to the fused nest leaves s_s tight: II blows
     up (the Fig. 2(d) schedule) *)
  let func = Polybench.bicg 1024 in
  let s = Scalehls.run func in
  let ii = List.assoc 0 s.Scalehls.report.Pom_hls.Report.iis in
  Alcotest.(check bool) "large II" true (ii > 10)

let test_scalehls_greedy_order () =
  let func = Polybench.mm3 2048 in
  let s = Scalehls.run func in
  let par name =
    match List.assoc_opt name s.Scalehls.tile_vectors with
    | Some v -> List.fold_left ( * ) 1 v
    | None -> 0
  in
  (* earlier loops get at least as much parallelism as later ones *)
  Alcotest.(check bool) "greedy allocation decays" true
    (par "mm_e" >= par "mm_g")

let test_scalehls_no_skew () =
  let func = Polybench.seidel ~tsteps:8 512 in
  let s = Scalehls.run func in
  let has_skew =
    List.exists
      (fun d -> match d with Pom_dsl.Schedule.Skew _ -> true | _ -> false)
      s.Scalehls.directives
  in
  Alcotest.(check bool) "no skewing" false has_skew

let test_scalehls_huge_size_pipeline_only () =
  let func = Polybench.gemm 8192 in
  let s = Scalehls.run func in
  let pars =
    List.map (fun (_, v) -> List.fold_left ( * ) 1 v) s.Scalehls.tile_vectors
  in
  Alcotest.(check (list int)) "par 1 only at 8192" [ 1 ] pars

let test_scalehls_correctness () =
  let func = Polybench.bicg 8 in
  let s = Scalehls.run func in
  Alcotest.(check (float 0.0)) "schedule preserves semantics" 0.0
    (Pom_sim.Interp.divergence func s.Scalehls.prog)

let test_manual_between_unopt_and_dse () =
  let n = 1024 in
  let func = Polybench.bicg n in
  let m = Manual.bicg n in
  let d = Pom_dse.Engine.run (Polybench.bicg n) in
  let manual_s = speedup func m.Manual.report in
  let dse_s =
    speedup func d.Pom_dse.Engine.result.Pom_dse.Stage2.report
  in
  Alcotest.(check bool) "manual beats unoptimized" true (manual_s > 20.0);
  Alcotest.(check bool) "DSE beats manual" true (dse_s > manual_s);
  Alcotest.(check (float 0.0)) "manual schedule is correct" 0.0
    (Pom_sim.Interp.divergence (Polybench.bicg 8) (Manual.bicg 8).Manual.prog)

let () =
  Alcotest.run "baselines"
    [
      ( "pluto",
        [
          Alcotest.test_case "no pragmas, ~1x" `Quick test_pluto_no_pragmas;
          Alcotest.test_case "tiles for locality" `Quick test_pluto_tiles;
        ] );
      ( "polsca",
        [
          Alcotest.test_case "dependence-limited II" `Quick
            test_polsca_dependence_limited;
          Alcotest.test_case "no partitioning" `Quick test_polsca_no_partitions;
        ] );
      ( "scalehls",
        [
          Alcotest.test_case "beats polsca on gemm" `Quick
            test_scalehls_beats_polsca_on_gemm;
          Alcotest.test_case "bicg stays tight" `Quick test_scalehls_bicg_tight;
          Alcotest.test_case "greedy program-order allocation" `Quick
            test_scalehls_greedy_order;
          Alcotest.test_case "no skewing" `Quick test_scalehls_no_skew;
          Alcotest.test_case "pipeline-only at 8192" `Quick
            test_scalehls_huge_size_pipeline_only;
          Alcotest.test_case "correctness" `Quick test_scalehls_correctness;
        ] );
      ( "manual",
        [
          Alcotest.test_case "between unoptimized and DSE" `Quick
            test_manual_between_unopt_and_dse;
        ] );
    ]
