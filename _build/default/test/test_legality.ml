open Pom_dsl
open Pom_polyir
open Pom_workloads

let structural func =
  List.fold_left Prog.apply
    (Prog.of_func_unscheduled func)
    (List.filter
       (fun d ->
         match (d : Schedule.t) with
         | Schedule.After _ | Schedule.Fuse _ -> true
         | _ -> false)
       (Func.directives func))

let check func prog = Legality.is_legal ~original:(structural func) ~transformed:prog

let test_identity_legal () =
  let f = Polybench.gemm 8 in
  Alcotest.(check bool) "identity" true (check f (structural f))

let test_safe_interchange_legal () =
  let f = Polybench.gemm 8 in
  Func.schedule f (Schedule.interchange "s" "i" "k");
  Alcotest.(check bool) "reduction rotation" true (check f (Prog.of_func f))

let test_tiling_legal () =
  let f = Polybench.gemm 8 in
  Func.schedule f (Schedule.tile "s" "i" "j" 2 2 "i0" "j0" "i1" "j1");
  Alcotest.(check bool) "tiling" true (check f (Prog.of_func f))

let test_skew_legal () =
  let f = Polybench.seidel ~tsteps:3 10 in
  Func.schedule f (Schedule.skew "s" "i" "j" 2 1 "is" "js");
  Func.schedule f (Schedule.interchange "s" "is" "js");
  Alcotest.(check bool) "skew + interchange" true (check f (Prog.of_func f))

let test_illegal_stencil_interchange () =
  (* moving the time loop inside a space loop of an in-place stencil
     reverses dependences *)
  let f = Polybench.seidel ~tsteps:3 10 in
  Func.schedule f (Schedule.interchange "s" "t" "j");
  Alcotest.(check bool) "caught" false (check f (Prog.of_func f));
  let vs =
    Legality.violations ~original:(structural (Polybench.seidel ~tsteps:3 10))
      ~transformed:(Prog.of_func f)
  in
  Alcotest.(check bool) "reports RAW on A" true
    (List.exists
       (fun (v : Legality.violation) ->
         v.Legality.kind = `Raw && v.Legality.array = "A")
       vs)

let test_illegal_distribution () =
  (* dropping the ping-pong fusion changes the interleaving *)
  let f = Polybench.jacobi1d ~tsteps:3 10 in
  Alcotest.(check bool) "caught" false (check f (Prog.of_func_unscheduled f))

let test_bicg_distribution_legal () =
  (* BICG's two statements are independent: dropping their fusion is fine *)
  let f = Polybench.bicg 8 in
  Alcotest.(check bool) "independent statements distribute" true
    (check f (Prog.of_func_unscheduled f))

let test_reversal_legality () =
  (* reversing gemm's parallel j loop is legal: no dependence runs along
     it *)
  let f = Polybench.gemm 8 in
  Func.schedule f (Schedule.reverse "s" "j" "jr");
  Alcotest.(check bool) "free-loop reversal legal" true (check f (Prog.of_func f));
  (* reversing the reduction loop k flips the accumulation chain *)
  let g = Polybench.gemm 8 in
  Func.schedule g (Schedule.reverse "s" "k" "kr");
  Alcotest.(check bool) "reduction reversal caught" false
    (check g (Prog.of_func g));
  (* reversing a stencil's space loop flips the in-sweep dependence *)
  let h = Polybench.seidel ~tsteps:3 10 in
  Func.schedule h (Schedule.reverse "s" "j" "jr");
  Alcotest.(check bool) "stencil reversal caught" false
    (check h (Prog.of_func h))

let test_dse_outputs_legal () =
  List.iter
    (fun func ->
      let o = Pom_dse.Engine.run func in
      Alcotest.(check bool)
        (Func.name func ^ " DSE schedule is legal")
        true
        (check func o.Pom_dse.Engine.result.Pom_dse.Stage2.prog))
    [
      Polybench.gemm 8;
      Polybench.bicg 8;
      Polybench.gesummv 8;
      Polybench.mm2 6;
      Polybench.jacobi1d ~tsteps:3 12;
      Polybench.seidel ~tsteps:2 10;
      Image.blur 10;
    ]

(* agreement: on random small schedules, the polyhedral verdict matches
   the simulator's (legal => divergence 0; we only check that direction,
   since an illegal interleaving can still compute equal values) *)
let sched_gen =
  QCheck.Gen.(
    list_size (int_range 0 3) (oneofl [ `Swap01; `Swap12; `Swap02 ]))

let prop_legal_implies_equivalent =
  QCheck.Test.make ~name:"legal schedules are semantically equivalent" ~count:30
    (QCheck.make sched_gen) (fun steps ->
      let f = Polybench.seidel ~tsteps:2 8 in
      List.iter
        (fun step ->
          let prog = Prog.of_func f in
          let order = Stmt_poly.loop_order (Prog.stmt prog "s") in
          let d k = List.nth order k in
          match step with
          | `Swap01 -> Func.schedule f (Schedule.interchange "s" (d 0) (d 1))
          | `Swap12 -> Func.schedule f (Schedule.interchange "s" (d 1) (d 2))
          | `Swap02 -> Func.schedule f (Schedule.interchange "s" (d 0) (d 2)))
        steps;
      let prog = Prog.of_func f in
      (not (check f prog)) || Pom_sim.Interp.divergence f prog = 0.0)

let () =
  Alcotest.run "legality"
    [
      ( "unit",
        [
          Alcotest.test_case "identity" `Quick test_identity_legal;
          Alcotest.test_case "safe interchange" `Quick test_safe_interchange_legal;
          Alcotest.test_case "tiling" `Quick test_tiling_legal;
          Alcotest.test_case "skewing" `Quick test_skew_legal;
          Alcotest.test_case "illegal stencil interchange" `Quick
            test_illegal_stencil_interchange;
          Alcotest.test_case "illegal distribution" `Quick test_illegal_distribution;
          Alcotest.test_case "independent distribution" `Quick
            test_bicg_distribution_legal;
          Alcotest.test_case "loop reversal legality" `Quick
            test_reversal_legality;
          Alcotest.test_case "DSE outputs are legal" `Slow test_dse_outputs_legal;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_legal_implies_equivalent ] );
    ]
