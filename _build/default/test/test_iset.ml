open Pom_poly

let v = Linexpr.var

let c = Linexpr.const

let interval d lo hi =
  Basic_set.make [ d ] [ Constr.ge (v d) (c lo); Constr.le (v d) (c hi) ]

let test_union_membership () =
  let u = Iset.union (Iset.of_basic (interval "i" 0 2)) (Iset.of_basic (interval "i" 5 7)) in
  let env x = function "i" -> x | _ -> raise Not_found in
  Alcotest.(check bool) "in first" true (Iset.mem (env 1) u);
  Alcotest.(check bool) "in gap" false (Iset.mem (env 3) u);
  Alcotest.(check bool) "in second" true (Iset.mem (env 6) u)

let test_intersect_distributes () =
  let u = Iset.union (Iset.of_basic (interval "i" 0 4)) (Iset.of_basic (interval "i" 8 10)) in
  let w = Iset.of_basic (interval "i" 3 9) in
  let both = Iset.intersect u w in
  let env x = function "i" -> x | _ -> raise Not_found in
  Alcotest.(check bool) "3 in" true (Iset.mem (env 3) both);
  Alcotest.(check bool) "5 out" false (Iset.mem (env 5) both);
  Alcotest.(check bool) "8 in" true (Iset.mem (env 8) both);
  Alcotest.(check int) "two disjuncts" 2 (List.length (Iset.disjuncts both))

let test_empty_coalesce () =
  let u =
    Iset.union
      (Iset.of_basic (interval "i" 5 2)) (* empty *)
      (Iset.of_basic (interval "i" 0 1))
  in
  Alcotest.(check bool) "not empty" false (Iset.is_empty u);
  Alcotest.(check int) "coalesced to one disjunct" 1
    (List.length (Iset.disjuncts (Iset.coalesce u)));
  Alcotest.(check bool) "all-empty union is empty" true
    (Iset.is_empty (Iset.of_basic (interval "i" 5 2)))

let test_min_max_over_union () =
  let u = Iset.union (Iset.of_basic (interval "i" 2 4)) (Iset.of_basic (interval "i" 9 11)) in
  Alcotest.(check (option int)) "min" (Some 2) (Iset.min_of (v "i") u);
  Alcotest.(check (option int)) "max" (Some 11) (Iset.max_of (v "i") u)

let test_space_check () =
  Alcotest.check_raises "different spaces"
    (Invalid_argument "Iset.union: dimension tuples differ") (fun () ->
      ignore (Iset.union (Iset.of_basic (interval "i" 0 1)) (Iset.of_basic (interval "j" 0 1))))

let test_project () =
  let b =
    Basic_set.make [ "i"; "j" ]
      [ Constr.ge (v "i") (c 0); Constr.le (v "i") (c 3);
        Constr.eq (v "j") (Linexpr.add (v "i") (c 10)) ]
  in
  let p = Iset.project_onto [ "j" ] (Iset.of_basic b) in
  Alcotest.(check (option int)) "projected min" (Some 10) (Iset.min_of (v "j") p);
  Alcotest.(check (option int)) "projected max" (Some 13) (Iset.max_of (v "j") p)

let () =
  Alcotest.run "iset"
    [
      ( "unit",
        [
          Alcotest.test_case "union membership" `Quick test_union_membership;
          Alcotest.test_case "intersection distributes" `Quick test_intersect_distributes;
          Alcotest.test_case "emptiness and coalescing" `Quick test_empty_coalesce;
          Alcotest.test_case "optimization over union" `Quick test_min_max_over_union;
          Alcotest.test_case "space checking" `Quick test_space_check;
          Alcotest.test_case "projection" `Quick test_project;
        ] );
    ]
