open Pom_poly

let v = Linexpr.var

let c = Linexpr.const

let test_identity_apply () =
  let m = Affine_map.identity [ "i"; "j" ] in
  Alcotest.(check (list int)) "identity" [ 3; 4 ] (Affine_map.apply m [ 3; 4 ])

let test_apply () =
  (* (i, j) -> (2i + j, j - 1) *)
  let m =
    Affine_map.make ~in_dims:[ "i"; "j" ]
      ~out_exprs:
        [ Linexpr.add (Linexpr.term 2 "i") (v "j"); Linexpr.sub (v "j") (c 1) ]
  in
  Alcotest.(check (list int)) "apply" [ 10; 3 ] (Affine_map.apply m [ 3; 4 ])

let test_compose () =
  let f =
    Affine_map.make ~in_dims:[ "i" ] ~out_exprs:[ Linexpr.add (v "i") (c 1) ]
  in
  let g =
    Affine_map.make ~in_dims:[ "x" ] ~out_exprs:[ Linexpr.term 3 "x" ]
  in
  let gf = Affine_map.compose g f in
  Alcotest.(check (list int)) "g after f" [ 9 ] (Affine_map.apply gf [ 2 ])

let test_preimage () =
  (* m : i -> 2i; preimage of {0 <= y <= 6} is {0 <= 2i <= 6} = {0..3} *)
  let m = Affine_map.make ~in_dims:[ "i" ] ~out_exprs:[ Linexpr.term 2 "i" ] in
  let target =
    Basic_set.make [ "y" ] [ Constr.ge (v "y") (c 0); Constr.le (v "y") (c 6) ]
  in
  let pre = Affine_map.preimage_set m [ "y" ] target in
  Alcotest.(check (pair (option int) (option int))) "preimage range"
    (Some 0, Some 3)
    (Basic_set.const_range "i" pre)

let test_image () =
  let m = Affine_map.make ~in_dims:[ "i" ] ~out_exprs:[ Linexpr.term 2 "i" ] in
  let domain =
    Basic_set.make [ "i" ] [ Constr.ge (v "i") (c 0); Constr.le (v "i") (c 3) ]
  in
  let img = Affine_map.image_set m [ "y" ] domain in
  Alcotest.(check (pair (option int) (option int))) "image range" (Some 0, Some 6)
    (Basic_set.const_range "y" img)

let test_arity_checks () =
  let m = Affine_map.identity [ "i" ] in
  Alcotest.check_raises "apply arity"
    (Invalid_argument "Affine_map.apply: arity mismatch") (fun () ->
      ignore (Affine_map.apply m [ 1; 2 ]))

let prop_preimage_correct =
  QCheck.Test.make ~name:"x in preimage iff m(x) in target" ~count:200
    QCheck.(pair (int_range (-3) 3) (int_range (-5) 5))
    (fun (a, x) ->
      QCheck.assume (a <> 0);
      let m =
        Affine_map.make ~in_dims:[ "i" ]
          ~out_exprs:[ Linexpr.add (Linexpr.term a "i") (c 1) ]
      in
      let target =
        Basic_set.make [ "y" ] [ Constr.ge (v "y") (c 0); Constr.le (v "y") (c 7) ]
      in
      let pre = Affine_map.preimage_set m [ "y" ] target in
      let y = (a * x) + 1 in
      Basic_set.mem (function "i" -> x | _ -> raise Not_found) pre
      = Basic_set.mem (function "y" -> y | _ -> raise Not_found) target)

let () =
  Alcotest.run "affine_map"
    [
      ( "unit",
        [
          Alcotest.test_case "identity" `Quick test_identity_apply;
          Alcotest.test_case "application" `Quick test_apply;
          Alcotest.test_case "composition" `Quick test_compose;
          Alcotest.test_case "preimage" `Quick test_preimage;
          Alcotest.test_case "image" `Quick test_image;
          Alcotest.test_case "arity checking" `Quick test_arity_checks;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_preimage_correct ]);
    ]
