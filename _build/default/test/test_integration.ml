(* End-to-end tests through the public Pom facade: every framework on every
   workload family, with the paper's qualitative orderings checked and
   schedules validated on the functional simulator. *)

open Pom_workloads

let compile fw func = Pom.compile ~framework:fw func

let test_all_frameworks_run () =
  let func () = Polybench.gemm 256 in
  List.iter
    (fun fw ->
      let c = compile fw (func ()) in
      Alcotest.(check bool) "latency positive" true
        (c.Pom.report.Pom_hls.Report.latency > 0);
      Alcotest.(check bool) "hls c generated" true
        (String.length c.Pom.hls_c > 100))
    [ `Baseline; `Pluto; `Polsca; `Scalehls; `Pom_manual; `Pom_auto ]

let test_paper_ordering_gemm () =
  (* baseline <= pluto ~ polsca << scalehls ~ pom *)
  let s fw = Pom.speedup (compile fw (Polybench.gemm 1024)) in
  let polsca = s `Polsca and scalehls = s `Scalehls and pom = s `Pom_auto in
  Alcotest.(check bool) "polsca modest" true (polsca < 10.0);
  Alcotest.(check bool) "pom >> polsca" true (pom > 10.0 *. polsca);
  Alcotest.(check bool) "pom >= scalehls" true (pom >= scalehls)

let test_paper_ordering_bicg () =
  (* the motivating example: POM clearly ahead of everyone *)
  let s fw = Pom.speedup (compile fw (Polybench.bicg 1024)) in
  let pom = s `Pom_auto in
  Alcotest.(check bool) "pom > scalehls" true (pom > s `Scalehls);
  Alcotest.(check bool) "pom > polsca" true (pom > s `Polsca);
  Alcotest.(check bool) "pom > 50x" true (pom > 50.0)

let test_stencil_only_pom_improves () =
  let seidel () = Polybench.seidel ~tsteps:8 512 in
  let pom = Pom.speedup (compile `Pom_auto (seidel ())) in
  let scalehls = Pom.speedup (compile `Scalehls (seidel ())) in
  Alcotest.(check bool) "pom improves seidel" true (pom > 20.0);
  Alcotest.(check bool) "scalehls trails pom" true (scalehls < pom)

let test_all_schedules_validate () =
  (* every framework's output is functionally equivalent to the
     specification (small sizes, simulator) *)
  let cases =
    [
      ("gemm", Polybench.gemm 8);
      ("bicg", Polybench.bicg 8);
      ("gesummv", Polybench.gesummv 8);
      ("2mm", Polybench.mm2 6);
      ("jacobi-1d", Polybench.jacobi1d ~tsteps:3 12);
      ("seidel", Polybench.seidel ~tsteps:2 10);
      ("blur", Image.blur 10);
      ("gaussian", Image.gaussian 10);
      ("edge-detect", Image.edge_detect 10);
      ("atax", Polybench.atax 8);
      ("mvt", Polybench.mvt 8);
      ("syrk", Polybench.syrk 8);
      ("trmm", Polybench.trmm 8);
      ("doitgen", Polybench.doitgen ~np:4 6);
    ]
  in
  List.iter
    (fun (name, func) ->
      List.iter
        (fun (fwname, fw) ->
          let c = Pom.compile ~framework:fw func in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s via %s" name fwname)
            0.0 (Pom.validate func c))
        [
          ("baseline", `Baseline);
          ("pluto", `Pluto);
          ("polsca", `Polsca);
          ("scalehls", `Scalehls);
          ("pom", `Pom_auto);
        ])
    cases

let test_resource_constraint_sweep () =
  (* Fig. 11: smaller budgets give designs that still fit and never get
     faster *)
  let prev_latency = ref 0 in
  List.iter
    (fun frac ->
      let device = Pom.Hls.Device.scale frac Pom.Hls.Device.xc7z020 in
      let c =
        Pom.compile ~device ~framework:`Pom_auto (Polybench.mm2 1024)
      in
      Alcotest.(check bool)
        (Printf.sprintf "fits at %.0f%%" (100.0 *. frac))
        true
        (Pom.Hls.Resource.fits device c.Pom.report.Pom_hls.Report.usage);
      Alcotest.(check bool) "monotone latency" true
        (!prev_latency = 0 || c.Pom.report.Pom_hls.Report.latency <= !prev_latency);
      prev_latency := c.Pom.report.Pom_hls.Report.latency)
    [ 0.25; 0.5; 0.75; 1.0 ]

let test_dnn_reuse_vs_dataflow () =
  let pom = Pom.compile ~framework:`Pom_auto ~dnn:true (Dnn.resnet18 ()) in
  let shls = Pom.compile ~framework:`Scalehls ~dnn:true (Dnn.resnet18 ()) in
  Alcotest.(check bool) "pom feasible" true pom.Pom.report.Pom_hls.Report.feasible;
  Alcotest.(check bool) "pom faster" true (Pom.speedup pom > Pom.speedup shls);
  Alcotest.(check bool) "pom uses fewer DSPs" true
    (pom.Pom.report.Pom_hls.Report.usage.Pom_hls.Resource.dsp
    < shls.Pom.report.Pom_hls.Report.usage.Pom_hls.Resource.dsp)

let test_dse_faster_than_scalehls_search () =
  (* Table III: POM's bottleneck-oriented DSE needs fewer QoR evaluations
     than ScaleHLS's dense-ladder greedy search (the deterministic
     counterpart of the DSE-time column) *)
  let pom =
    Pom.Dse.Engine.run (Polybench.mm3 2048)
  in
  let shls = Pom.Baselines.Scalehls.run (Polybench.mm3 2048) in
  Alcotest.(check bool) "pom needs fewer evaluations" true
    (pom.Pom.Dse.Engine.result.Pom.Dse.Stage2.evaluations
    <= shls.Pom.Baselines.Scalehls.evaluations)

let test_legality_of_compiled_schedules () =
  List.iter
    (fun (name, func) ->
      let c = Pom.compile ~framework:`Pom_auto func in
      Alcotest.(check (list pass))
        (name ^ " legality")
        []
        (Pom.check_legality func c))
    [
      ("gemm", Polybench.gemm 64);
      ("bicg", Polybench.bicg 64);
      ("trmm", Polybench.trmm 16);
      ("seidel", Polybench.seidel ~tsteps:4 16);
    ]

let test_dtype_customization () =
  (* narrower types buy strictly more parallelism on the same device *)
  let par dt =
    let c = Pom.compile ~framework:`Pom_auto (Polybench.gemm_typed dt 1024) in
    c.Pom.report.Pom_hls.Report.parallelism
  in
  Alcotest.(check bool) "int16 >= float" true
    (par Pom.Dsl.Dtype.p_int16 >= par Pom.Dsl.Dtype.p_float32);
  Alcotest.(check bool) "float >= double" true
    (par Pom.Dsl.Dtype.p_float32 >= par Pom.Dsl.Dtype.p_float64)

let test_timeline_renders () =
  let c = Pom.compile ~framework:`Pom_auto (Polybench.bicg 8) in
  let s = Pom.Hls.Timeline.render ~max_instances:6 c.Pom.prog in
  Alcotest.(check bool) "non-empty" true (String.length s > 40);
  Alcotest.(check bool) "has bars" true (String.contains s '#')

let test_loc_comparison () =
  (* Fig. 15: DSL is several times shorter than the generated HLS C *)
  List.iter
    (fun func ->
      let c = Pom.compile ~framework:`Pom_auto func in
      let hls_loc = Pom.Emit.Emit.loc c.Pom.hls_c in
      let dsl_loc = Pom.Dsl.Func.loc_auto func in
      Alcotest.(check bool)
        (Pom.Dsl.Func.name func ^ " DSL much shorter")
        true
        (hls_loc > 2 * dsl_loc))
    [ Polybench.mm3 64; Polybench.gemm 64 ]

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "all frameworks run" `Quick test_all_frameworks_run;
          Alcotest.test_case "gemm ordering" `Quick test_paper_ordering_gemm;
          Alcotest.test_case "bicg ordering" `Quick test_paper_ordering_bicg;
          Alcotest.test_case "stencil: only POM improves" `Quick
            test_stencil_only_pom_improves;
          Alcotest.test_case "all schedules validate" `Slow
            test_all_schedules_validate;
          Alcotest.test_case "resource sweep (Fig. 11)" `Quick
            test_resource_constraint_sweep;
          Alcotest.test_case "DNN reuse vs dataflow" `Slow
            test_dnn_reuse_vs_dataflow;
          Alcotest.test_case "DSE time vs ScaleHLS" `Quick
            test_dse_faster_than_scalehls_search;
          Alcotest.test_case "LoC comparison (Fig. 15)" `Quick test_loc_comparison;
          Alcotest.test_case "compiled schedules are legal" `Slow
            test_legality_of_compiled_schedules;
          Alcotest.test_case "data-type customization" `Quick
            test_dtype_customization;
          Alcotest.test_case "timeline renders" `Quick test_timeline_renders;
        ] );
    ]
