open Pom_poly

let v = Linexpr.var

let c = Linexpr.const

let box dims_bounds =
  Basic_set.make
    (List.map (fun (d, _, _) -> d) dims_bounds)
    (List.concat_map
       (fun (d, lo, hi) ->
         [ Constr.ge (v d) (c lo); Constr.le (v d) (c (hi - 1)) ])
       dims_bounds)

(* GEMM reduction: D(i,j) written and read at every (i,j,k) -> distance
   vector (0,0,1), carried at level 3 (Fig. 8's fine-grained analysis) *)
let test_gemm_reduction () =
  let domain = box [ ("i", 0, 32); ("j", 0, 32); ("k", 0, 32) ] in
  let acc = Dep.access "D" [ v "i"; v "j" ] in
  match Dep.analyze ~domain ~source:acc ~sink:acc with
  | None -> Alcotest.fail "expected dependence"
  | Some d ->
      Alcotest.(check int) "carried at level 3" 3 (Dep.outermost_level d);
      Alcotest.(check (option int)) "distance at level 3" (Some 1)
        (Dep.min_distance_at d 3);
      Alcotest.(check (list (option int))) "min distance vector"
        [ Some 0; Some 0; Some 1 ]
        (Dep.min_distance_vector d);
      Alcotest.(check string) "direction" "(=, =, <)"
        (Format.asprintf "(%a)"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
              Dep.pp_direction)
           d.Dep.direction)

(* BICG's q accumulation: q(i) over (i,j) -> carried at level 2 only *)
let test_bicg_q () =
  let domain = box [ ("i", 0, 16); ("j", 0, 16) ] in
  let acc = Dep.access "q" [ v "i" ] in
  match Dep.analyze ~domain ~source:acc ~sink:acc with
  | None -> Alcotest.fail "expected dependence"
  | Some d ->
      Alcotest.(check int) "single carried level" 2 (Dep.outermost_level d);
      Alcotest.(check int) "same innermost" 2 (Dep.innermost_level d);
      Alcotest.(check (option int)) "not carried at level 1" None
        (Dep.min_distance_at d 1)

(* uniform stencil: write A(i), read A(i-1): distance exactly 1 *)
let test_uniform_stencil () =
  let domain = box [ ("i", 1, 31) ] in
  let w = Dep.access "A" [ v "i" ] in
  let r = Dep.access "A" [ Linexpr.sub (v "i") (c 1) ] in
  match Dep.analyze ~domain ~source:w ~sink:r with
  | None -> Alcotest.fail "expected dependence"
  | Some d ->
      Alcotest.(check (option (list int))) "constant distance" (Some [ 1 ])
        (Dep.constant_distance d)

(* anti-direction read A(i+1): the write never reaches a later read *)
let test_no_forward_dependence () =
  let domain = box [ ("i", 1, 31) ] in
  let w = Dep.access "A" [ v "i" ] in
  let r = Dep.access "A" [ Linexpr.add (v "i") (c 1) ] in
  (* sink (t) reads A(t+1) = A(s) means t = s - 1 < s: no later sink *)
  Alcotest.(check bool) "no dependence" true
    (Dep.analyze ~domain ~source:w ~sink:r = None)

let test_different_arrays () =
  let domain = box [ ("i", 0, 8) ] in
  Alcotest.(check bool) "different arrays never conflict" true
    (Dep.analyze ~domain ~source:(Dep.access "A" [ v "i" ])
       ~sink:(Dep.access "B" [ v "i" ])
    = None)

let test_strided_no_conflict () =
  (* write A(2i), read A(2i + 1): parity separates them *)
  let domain = box [ ("i", 0, 8) ] in
  let w = Dep.access "A" [ Linexpr.term 2 "i" ] in
  let r = Dep.access "A" [ Linexpr.add (Linexpr.term 2 "i") (c 1) ] in
  Alcotest.(check bool) "parity disjoint" true
    (Dep.analyze ~domain ~source:w ~sink:r = None)

(* seidel-style: write A(i,j), read A(i+1,j-1) (i.e. source at (i,j) feeds
   sink at (i+1, j-1) reading the updated value) *)
let test_seidel_diagonal () =
  let domain = box [ ("i", 1, 9); ("j", 1, 9) ] in
  let w = Dep.access "A" [ v "i"; v "j" ] in
  let r = Dep.access "A" [ Linexpr.sub (v "i") (c 1); Linexpr.add (v "j") (c 1) ] in
  match Dep.analyze ~domain ~source:w ~sink:r with
  | None -> Alcotest.fail "expected dependence"
  | Some d ->
      Alcotest.(check (option (list int))) "distance (1,-1)" (Some [ 1; -1 ])
        (Dep.constant_distance d)

(* property: the reported minimal distance at the outermost carried level
   is witnessed by an actual conflicting instance pair (brute force) *)
let prop_distance_witnessed =
  QCheck.Test.make ~name:"minimal distance has a witness" ~count:100
    QCheck.(pair (int_range (-2) 2) (int_range (-2) 2))
    (fun (di, dj) ->
      QCheck.assume (not (di = 0 && dj = 0));
      let n = 6 in
      let domain = box [ ("i", 0, n); ("j", 0, n) ] in
      let w = Dep.access "A" [ v "i"; v "j" ] in
      let r =
        Dep.access "A"
          [ Linexpr.add (v "i") (c di); Linexpr.add (v "j") (c dj) ]
      in
      (* brute force: does any (s, t) with s <lex t conflict? *)
      let exists = ref false in
      for si = 0 to n - 1 do
        for sj = 0 to n - 1 do
          for ti = 0 to n - 1 do
            for tj = 0 to n - 1 do
              if
                (si < ti || (si = ti && sj < tj))
                && si = ti + di && sj = tj + dj
              then exists := true
            done
          done
        done
      done;
      (Dep.analyze ~domain ~source:w ~sink:r <> None) = !exists)

let () =
  Alcotest.run "dep"
    [
      ( "unit",
        [
          Alcotest.test_case "GEMM reduction (0,0,1)" `Quick test_gemm_reduction;
          Alcotest.test_case "BICG q accumulation" `Quick test_bicg_q;
          Alcotest.test_case "uniform stencil distance" `Quick test_uniform_stencil;
          Alcotest.test_case "no forward dependence" `Quick test_no_forward_dependence;
          Alcotest.test_case "different arrays" `Quick test_different_arrays;
          Alcotest.test_case "strided parity disjoint" `Quick test_strided_no_conflict;
          Alcotest.test_case "diagonal stencil distance" `Quick test_seidel_diagonal;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_distance_witnessed ]);
    ]
