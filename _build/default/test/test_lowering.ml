open Pom_dsl
open Pom_polyir
open Pom_affine
open Expr

let f32 = Dtype.p_float32

let gemm_func n =
  let f = Func.create "gemm" in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  let d = Placeholder.make "D" [ n; n ] f32 in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  ignore
    (Func.compute f "s" ~iters:[ k; i; j ]
       ~body:
         (access d [ ix i; ix j ]
         +: (access a [ ix i; ix k ] *: access b [ ix k; ix j ]))
       ~dest:(d, [ ix i; ix j ]) ());
  f

let rec count_fors = function
  | Ir.For { body; _ } -> 1 + List.fold_left (fun a n -> a + count_fors n) 0 body
  | Ir.If (_, body) -> List.fold_left (fun a n -> a + count_fors n) 0 body
  | Ir.Op _ -> 0

let rec find_for_with_attr pred = function
  | Ir.For { attrs; body; _ } as f ->
      if pred attrs then Some f
      else List.find_map (find_for_with_attr pred) body
  | Ir.If (_, body) -> List.find_map (find_for_with_attr pred) body
  | Ir.Op _ -> None

let test_lower_plain () =
  let func = gemm_func 8 in
  let af = Lower.lower (Prog.of_func func) in
  Alcotest.(check string) "function name" "gemm" af.Ir.name;
  Alcotest.(check int) "three loops"
    3
    (List.fold_left (fun a n -> a + count_fors n) 0 af.Ir.body);
  Alcotest.(check int) "one statement" 1 (List.length (Ir.stmts af.Ir.body));
  Alcotest.(check int) "three arrays" 3 (List.length af.Ir.arrays)

let test_attrs_propagate () =
  let func = gemm_func 8 in
  Func.schedule func (Schedule.pipeline "s" "i" 1);
  Func.schedule func (Schedule.unroll "s" "j" 4);
  let af = Lower.lower (Prog.of_func func) in
  let pipelined =
    List.find_map
      (find_for_with_attr (fun a -> a.Ir.pipeline_ii = Some 1))
      af.Ir.body
  in
  Alcotest.(check bool) "pipeline attr present" true (pipelined <> None);
  let unrolled =
    List.find_map
      (find_for_with_attr (fun a -> a.Ir.unroll_factor = Some 4))
      af.Ir.body
  in
  Alcotest.(check bool) "unroll attr present" true (unrolled <> None)

let test_partition_info () =
  let func = gemm_func 8 in
  Func.schedule func (Schedule.partition "A" [ 2; 4 ] Schedule.Cyclic);
  let af = Lower.lower (Prog.of_func func) in
  let a_info =
    List.find
      (fun (i : Ir.array_info) -> i.Ir.placeholder.Placeholder.name = "A")
      af.Ir.arrays
  in
  Alcotest.(check (list int)) "partition factors" [ 2; 4 ] a_info.Ir.partition

let test_index_rewrite_after_split () =
  let func = gemm_func 8 in
  Func.schedule func (Schedule.split "s" "j" 4 "j0" "j1");
  let af = Lower.lower (Prog.of_func func) in
  match Ir.stmts af.Ir.body with
  | [ s ] ->
      (* the store index for j must read 4*j0 + j1 in AST iterators *)
      let _, dest_ixs = s.Ir.dest in
      let j_ix = List.nth dest_ixs 1 in
      let open Pom_poly in
      let le = Expr.index_to_linexpr j_ix in
      let coeffs = List.map (fun d -> Linexpr.coeff le d) (Linexpr.dims le) in
      Alcotest.(check (list int)) "coefficients 1 and 4" [ 1; 4 ]
        (List.sort compare coeffs)
  | _ -> Alcotest.fail "expected one statement"

let test_const_extent () =
  let func = gemm_func 8 in
  let af = Lower.lower (Prog.of_func func) in
  match af.Ir.body with
  | [ (Ir.For _ as f) ] ->
      Alcotest.(check (option int)) "outer extent" (Some 8) (Ir.const_extent f)
  | _ -> Alcotest.fail "expected one outer loop"

let test_index_of_linexpr_roundtrip () =
  let open Pom_poly in
  let e =
    Linexpr.add (Linexpr.term 3 "x") (Linexpr.add (Linexpr.term (-2) "y") (Linexpr.const 7))
  in
  let ix = Lower.index_of_linexpr e in
  Alcotest.(check bool) "roundtrip" true
    (Linexpr.equal e (Expr.index_to_linexpr ix))

let () =
  Alcotest.run "lowering"
    [
      ( "unit",
        [
          Alcotest.test_case "plain lowering" `Quick test_lower_plain;
          Alcotest.test_case "attributes propagate" `Quick test_attrs_propagate;
          Alcotest.test_case "partition info" `Quick test_partition_info;
          Alcotest.test_case "index rewrite after split" `Quick
            test_index_rewrite_after_split;
          Alcotest.test_case "const extent" `Quick test_const_extent;
          Alcotest.test_case "linexpr/index roundtrip" `Quick
            test_index_of_linexpr_roundtrip;
        ] );
    ]
