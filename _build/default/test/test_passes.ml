open Pom_poly
open Pom_affine

let v = Linexpr.var

let c k = Linexpr.const k

let dummy_stmt =
  let p = Pom_dsl.Placeholder.make "A" [ 8 ] Pom_dsl.Dtype.p_float32 in
  {
    Ir.compute_name = "s";
    dest = (p, [ Pom_dsl.Expr.Ix_var "i" ]);
    rhs = Pom_dsl.Expr.Fconst 1.0;
  }

let for_ iter body =
  Ir.For
    {
      iter;
      lbs = [ Ast.bound 1 (c 0) ];
      ubs = [ Ast.bound 1 (c 7) ];
      attrs = Ir.no_attrs;
      body;
    }

let func body = { Ir.name = "f"; arrays = []; body }

let test_merge_nested_ifs () =
  let g1 = [ Constr.Ge (v "x") ] and g2 = [ Constr.Ge (v "y") ] in
  match Passes.merge_guards [ Ir.If (g1, [ Ir.If (g2, [ Ir.Op dummy_stmt ]) ]) ] with
  | [ Ir.If (gs, [ Ir.Op _ ]) ] ->
      Alcotest.(check int) "merged conjunction" 2 (List.length gs)
  | _ -> Alcotest.fail "expected one flattened if"

let test_hoist_invariant_guard () =
  (* for i { if (j >= 1 and i >= 2) S } : the j conjunct moves out *)
  let guards = [ Constr.Ge (Linexpr.sub (v "j") (c 1)); Constr.Ge (Linexpr.sub (v "i") (c 2)) ] in
  match Passes.hoist_guards [ for_ "i" [ Ir.If (guards, [ Ir.Op dummy_stmt ]) ] ] with
  | [ Ir.If ([ inv ], [ Ir.For { body = [ Ir.If ([ dep ], _) ]; _ } ]) ] ->
      Alcotest.(check (list string)) "invariant mentions j" [ "j" ] (Constr.dims inv);
      Alcotest.(check (list string)) "dependent mentions i" [ "i" ] (Constr.dims dep)
  | _ -> Alcotest.fail "expected hoisted structure"

let test_hoist_fully_invariant () =
  let guards = [ Constr.Ge (v "j") ] in
  match Passes.hoist_guards [ for_ "i" [ Ir.If (guards, [ Ir.Op dummy_stmt ]) ] ] with
  | [ Ir.If (_, [ Ir.For { body = [ Ir.Op _ ]; _ } ]) ] -> ()
  | _ -> Alcotest.fail "guard should wrap the loop"

let test_drop_tautologies () =
  let f =
    Passes.simplify
      (func [ Ir.If ([ Constr.Ge (c 3) ], [ Ir.Op dummy_stmt ]) ])
  in
  match f.Ir.body with
  | [ Ir.Op _ ] -> ()
  | _ -> Alcotest.fail "tautological guard should vanish"

let test_simplify_preserves_semantics () =
  (* fused statements with different domains produce leaf guards; the
     simplified program must execute identically *)
  let open Pom_dsl in
  let fn = Func.create "g" in
  let a = Placeholder.make "A" [ 16 ] Dtype.p_float32 in
  let b = Placeholder.make "B" [ 16 ] Dtype.p_float32 in
  let i1 = Var.make "i" 0 12 and i2 = Var.make "i" 4 16 in
  let open Expr in
  ignore
    (Func.compute fn "s1" ~iters:[ i1 ]
       ~body:(access a [ ix i1 ] +: fconst 1.0)
       ~dest:(a, [ ix i1 ]) ());
  ignore
    (Func.compute fn "s2" ~iters:[ i2 ]
       ~body:(access b [ ix i2 ] +: fconst 2.0)
       ~dest:(b, [ ix i2 ]) ());
  Func.schedule fn (Schedule.fuse "s1" "s2" ~level:1);
  let prog = Pom_polyir.Prog.of_func fn in
  let plain = Lower.lower prog in
  let simplified = Passes.simplify plain in
  let ps = Func.placeholders fn in
  let m1 = Pom_sim.Memory.create ps in
  let m2 = Pom_sim.Memory.copy m1 in
  Pom_sim.Interp.run_affine plain m1;
  Pom_sim.Interp.run_affine simplified m2;
  Alcotest.(check (float 0.0)) "same result" 0.0 (Pom_sim.Memory.max_diff m1 m2)

let () =
  Alcotest.run "passes"
    [
      ( "unit",
        [
          Alcotest.test_case "merge nested ifs" `Quick test_merge_nested_ifs;
          Alcotest.test_case "hoist invariant conjunct" `Quick
            test_hoist_invariant_guard;
          Alcotest.test_case "hoist fully invariant guard" `Quick
            test_hoist_fully_invariant;
          Alcotest.test_case "drop tautologies" `Quick test_drop_tautologies;
          Alcotest.test_case "simplify preserves semantics" `Quick
            test_simplify_preserves_semantics;
        ] );
    ]
