test/test_dse.ml: Alcotest Engine Func Image List Polybench Pom_dse Pom_dsl Pom_hls Pom_polyir Pom_sim Pom_workloads Schedule Stage1 Stage2 String
