test/test_workloads.ml: Alcotest Compute Dnn Dtype Func Image List Placeholder Polybench Pom_depgraph Pom_dsl Pom_poly Pom_sim Pom_workloads Schedule
