test/test_baselines.ml: Alcotest List Manual Pluto Polsca Polybench Pom_baselines Pom_dse Pom_dsl Pom_hls Pom_sim Pom_workloads Scalehls
