test/test_integration.ml: Alcotest Dnn Image List Polybench Pom Pom_hls Pom_workloads Printf String
