test/test_passes.ml: Alcotest Ast Constr Dtype Expr Func Ir Linexpr List Lower Passes Placeholder Pom_affine Pom_dsl Pom_poly Pom_polyir Pom_sim Schedule Var
