test/test_affine_map.mli:
