test/test_cemit.ml: Alcotest Filename Float Func Image List Polybench Pom_affine Pom_dse Pom_dsl Pom_emit Pom_polyir Pom_sim Pom_workloads Printf Schedule String Sys Unix
