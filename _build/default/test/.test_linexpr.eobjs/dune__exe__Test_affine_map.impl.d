test/test_affine_map.ml: Affine_map Alcotest Basic_set Constr Linexpr Pom_poly QCheck QCheck_alcotest
