test/test_emit.ml: Alcotest Dtype Expr Func List Placeholder Pom_affine Pom_dsl Pom_emit Pom_polyir Pom_workloads Prog Schedule String Var
