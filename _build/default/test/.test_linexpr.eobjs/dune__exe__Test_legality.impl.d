test/test_legality.ml: Alcotest Func Image Legality List Polybench Pom_dse Pom_dsl Pom_polyir Pom_sim Pom_workloads Prog QCheck QCheck_alcotest Schedule Stmt_poly
