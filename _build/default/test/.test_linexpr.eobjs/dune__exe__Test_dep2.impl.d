test/test_dep2.ml: Alcotest Basic_set Constr Dep Dep2 Linexpr List Pom_poly Sched
