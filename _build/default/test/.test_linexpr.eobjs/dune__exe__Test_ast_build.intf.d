test/test_ast_build.mli:
