test/test_dep.ml: Alcotest Basic_set Constr Dep Format Linexpr List Pom_poly QCheck QCheck_alcotest
