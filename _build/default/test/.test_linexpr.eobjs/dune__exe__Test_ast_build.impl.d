test/test_ast_build.ml: Alcotest Ast Ast_build Basic_set Constr Feasible Fun Hashtbl Linexpr List Pom_poly QCheck QCheck_alcotest Sched
