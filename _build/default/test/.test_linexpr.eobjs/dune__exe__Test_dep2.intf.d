test/test_dep2.mli:
