test/test_sched.ml: Alcotest Pom_poly Sched
