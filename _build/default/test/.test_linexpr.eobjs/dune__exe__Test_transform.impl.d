test/test_transform.ml: Alcotest Compute Dtype Expr Linexpr List Placeholder Pom_dsl Pom_poly Pom_polyir Printf QCheck QCheck_alcotest Sched Stmt_poly Transform Var
