test/test_dep.mli:
