test/test_depgraph.ml: Alcotest Dtype Expr Finegrain Func Graph Hints List Placeholder Pom_depgraph Pom_dsl Pom_workloads Var
