test/test_linexpr.ml: Alcotest Linexpr List Pom_poly QCheck QCheck_alcotest
