test/test_basic_set.mli:
