test/test_dsl.ml: Alcotest Compute Dtype Expr Func Linexpr List Placeholder Pom_dsl Pom_poly Schedule Var
