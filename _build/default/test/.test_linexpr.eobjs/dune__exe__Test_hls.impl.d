test/test_hls.ml: Alcotest Device Dtype Expr Func List Opchar Placeholder Pom_dse Pom_dsl Pom_hls Pom_polyir Pom_workloads Prog QCheck QCheck_alcotest Report Resource Schedule Summary Var
