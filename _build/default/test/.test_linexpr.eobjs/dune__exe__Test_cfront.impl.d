test/test_cfront.ml: Alcotest Compute Dtype Filename Func Lexer List Parse Placeholder Pom Pom_cfront Pom_dsl Pom_sim Pom_workloads Schedule Sys Var
