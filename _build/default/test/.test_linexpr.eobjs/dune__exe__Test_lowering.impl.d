test/test_lowering.ml: Alcotest Dtype Expr Func Ir Linexpr List Lower Placeholder Pom_affine Pom_dsl Pom_poly Pom_polyir Prog Schedule Var
