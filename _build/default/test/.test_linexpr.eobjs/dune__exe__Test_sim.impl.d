test/test_sim.ml: Alcotest Dtype Expr Func Interp List Memory Placeholder Pom_dsl Pom_polyir Pom_sim Pom_workloads Printf Prog QCheck QCheck_alcotest Schedule Stmt_poly Var
