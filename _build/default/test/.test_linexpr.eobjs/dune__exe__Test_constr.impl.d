test/test_constr.ml: Alcotest Constr Linexpr Pom_poly QCheck QCheck_alcotest
