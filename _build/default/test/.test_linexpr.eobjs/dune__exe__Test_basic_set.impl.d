test/test_basic_set.ml: Alcotest Basic_set Constr Feasible Linexpr List Pom_poly QCheck QCheck_alcotest
