test/test_iset.ml: Alcotest Basic_set Constr Iset Linexpr List Pom_poly
