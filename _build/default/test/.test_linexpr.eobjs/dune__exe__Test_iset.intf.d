test/test_iset.mli:
