(* Cross-check the generated HLS C against the OCaml simulator: compile the
   kernel + generated testbench with the system C compiler, run it, and
   compare per-array checksums with the simulator's on bit-identical
   inputs.  Skipped gracefully when no C compiler is on PATH. *)

open Pom_dsl
open Pom_workloads

let have_cc = Sys.command "command -v cc > /dev/null 2> /dev/null" = 0

let run_c source =
  let dir = Filename.temp_file "pomtb" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c_file = Filename.concat dir "tb.c" in
  let exe = Filename.concat dir "tb" in
  let out = Filename.concat dir "out.txt" in
  let oc = open_out c_file in
  output_string oc source;
  close_out oc;
  let compile =
    Printf.sprintf "cc -O1 -o %s %s -lm 2> %s/cc.log" exe c_file dir
  in
  if Sys.command compile <> 0 then
    Alcotest.failf "cc failed (see %s/cc.log)" dir;
  if Sys.command (Printf.sprintf "%s > %s" exe out) <> 0 then
    Alcotest.fail "testbench exited non-zero";
  let ic = open_in out in
  let sums = ref [] in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char ' ' line with
       | [ name; value ] -> sums := (name, float_of_string value) :: !sums
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  List.sort compare !sums

let sim_checksums func prog =
  let mem = Pom_sim.Memory.create (Func.placeholders func) in
  Pom_sim.Interp.run_affine
    (Pom_affine.Passes.simplify (Pom_affine.Lower.lower prog))
    mem;
  Pom_sim.Memory.checksums mem

let crosscheck name func prog =
  if not have_cc then ()
  else begin
    let af = Pom_affine.Passes.simplify (Pom_affine.Lower.lower prog) in
    let c_sums = run_c (Pom_emit.Emit.testbench af) in
    let ml_sums = sim_checksums func prog in
    Alcotest.(check (list string))
      (name ^ ": same arrays")
      (List.map fst ml_sums) (List.map fst c_sums);
    List.iter2
      (fun (a, x) (_, y) ->
        let rel = Float.abs (x -. y) /. Float.max 1.0 (Float.abs x) in
        if rel > 1e-3 then
          Alcotest.failf "%s: array %s checksum differs: C %.10e vs sim %.10e"
            name a y x)
      ml_sums c_sums
  end

let structural func =
  List.fold_left Pom_polyir.Prog.apply
    (Pom_polyir.Prog.of_func_unscheduled func)
    (List.filter
       (fun d ->
         match (d : Schedule.t) with
         | Schedule.After _ | Schedule.Fuse _ -> true
         | _ -> false)
       (Func.directives func))

let test_plain_kernels () =
  List.iter
    (fun func -> crosscheck (Func.name func) func (structural func))
    [
      Polybench.gemm 12;
      Polybench.bicg 12;
      Polybench.gesummv 10;
      Polybench.seidel ~tsteps:3 12;
      Polybench.jacobi1d ~tsteps:4 16;
      Polybench.trmm 10;
      Image.blur 10;
      Image.gaussian 10;
    ]

let test_transformed_kernels () =
  (* the DSE's full schedules, including skewed and fused ones, produce C
     that computes the same values *)
  List.iter
    (fun func ->
      let o = Pom_dse.Engine.run func in
      crosscheck
        (Func.name func ^ "+dse")
        func o.Pom_dse.Engine.result.Pom_dse.Stage2.prog)
    [
      Polybench.gemm 12;
      Polybench.bicg 12;
      Polybench.seidel ~tsteps:3 12;
      Polybench.mm2 8;
    ]

let test_manual_schedule () =
  let f = Polybench.gemm 8 in
  Func.schedule f (Schedule.tile "s" "i" "j" 2 4 "i0" "j0" "i1" "j1");
  Func.schedule f (Schedule.interchange "s" "k" "i0");
  crosscheck "gemm+manual" f (Pom_polyir.Prog.of_func f)

let () =
  Alcotest.run "cemit"
    [
      ( "cross-check",
        [
          Alcotest.test_case "plain kernels" `Slow test_plain_kernels;
          Alcotest.test_case "DSE-transformed kernels" `Slow
            test_transformed_kernels;
          Alcotest.test_case "manual schedule" `Quick test_manual_schedule;
        ] );
    ]
