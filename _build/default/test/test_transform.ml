open Pom_dsl
open Pom_polyir
open Expr

let f32 = Dtype.p_float32

let small_gemm n =
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  let d = Placeholder.make "D" [ n; n ] f32 in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  Compute.make "s" ~iters:[ i; j; k ]
    ~body:(access d [ ix i; ix j ] +: (access a [ ix i; ix k ] *: access b [ ix k; ix j ]))
    ~dest:(d, [ ix i; ix j ]) ()

let stmt n = Stmt_poly.of_compute ~position:0 (small_gemm n)

let test_interchange () =
  let s = Transform.interchange (stmt 4) "i" "k" in
  Alcotest.(check (list string)) "loop order" [ "k"; "j"; "i" ]
    (Stmt_poly.loop_order s);
  (* executed original points are unchanged *)
  Alcotest.(check (list (list int))) "points invariant"
    (Transform.original_points (stmt 4))
    (Transform.original_points s)

let test_split () =
  let s = Transform.split (stmt 4) "j" 2 ~outer:"j0" ~inner:"j1" in
  Alcotest.(check (list string)) "loop order" [ "i"; "j0"; "j1"; "k" ]
    (Stmt_poly.loop_order s);
  Alcotest.(check (list (list int))) "points invariant"
    (Transform.original_points (stmt 4))
    (Transform.original_points s);
  (* the index map rewires j = 2*j0 + j1 *)
  let open Pom_poly in
  let j_expr = List.assoc "j" s.Stmt_poly.index_map in
  Alcotest.(check int) "j0 coeff" 2 (Linexpr.coeff j_expr "j0");
  Alcotest.(check int) "j1 coeff" 1 (Linexpr.coeff j_expr "j1")

let test_split_non_divisible () =
  (* 4 iterations split by 3: still exactly 4 executed points *)
  let s = Transform.split (stmt 4) "i" 3 ~outer:"i0" ~inner:"i1" in
  Alcotest.(check int) "point count" 64
    (List.length (Transform.original_points s))

let test_tile () =
  let s = Transform.tile (stmt 4) "i" "j" 2 2 ~o1:"i0" ~o2:"j0" ~i1:"i1" ~i2:"j1" in
  Alcotest.(check (list string)) "tiled order" [ "i0"; "j0"; "i1"; "j1"; "k" ]
    (Stmt_poly.loop_order s);
  Alcotest.(check (list (list int))) "points invariant"
    (Transform.original_points (stmt 4))
    (Transform.original_points s)

let test_tile_requires_adjacent () =
  Alcotest.(check bool) "non-adjacent rejected" true
    (try
       ignore (Transform.tile (stmt 4) "i" "k" 2 2 ~o1:"a" ~o2:"b" ~i1:"c" ~i2:"d");
       false
     with Transform.Transform_error _ -> true)

let test_skew () =
  let s = Transform.skew (stmt 4) "i" "j" 1 1 ~n1:"is" ~n2:"js" in
  Alcotest.(check (list string)) "skewed order" [ "is"; "js"; "k" ]
    (Stmt_poly.loop_order s);
  Alcotest.(check (list (list int))) "points invariant"
    (Transform.original_points (stmt 4))
    (Transform.original_points s)

let test_skew_negative_factor () =
  let s = Transform.skew (stmt 3) "i" "j" 2 (-1) ~n1:"is" ~n2:"js" in
  Alcotest.(check (list (list int))) "points invariant"
    (Transform.original_points (stmt 3))
    (Transform.original_points s)

let test_reverse () =
  let s = Transform.reverse (stmt 4) "j" ~new_dim:"jr" in
  Alcotest.(check (list string)) "loop order" [ "i"; "jr"; "k" ]
    (Stmt_poly.loop_order s);
  Alcotest.(check (list (list int))) "points invariant"
    (Transform.original_points (stmt 4))
    (Transform.original_points s);
  (* range preserved *)
  Alcotest.(check (pair (option int) (option int))) "range" (Some 0, Some 3)
    (Pom_poly.Basic_set.const_range "jr" s.Stmt_poly.domain)

let test_sequence_after () =
  let anchor = stmt 4 in
  let s = Transform.sequence_after (stmt 4) ~anchor ~level:2 in
  let open Pom_poly in
  Alcotest.(check int) "const 0 shared" 0 (Sched.const_at s.Stmt_poly.sched 0);
  Alcotest.(check int) "const at level 2 bumped" 1
    (Sched.const_at s.Stmt_poly.sched 2)

let test_hw_attrs () =
  let s = Transform.pipeline (stmt 4) "j" 1 in
  let s = Transform.unroll s "k" 4 in
  (match s.Stmt_poly.hw.Stmt_poly.pipeline with
  | Some ("j", 1) -> ()
  | _ -> Alcotest.fail "pipeline attr");
  Alcotest.(check (option int)) "unroll attr" (Some 4)
    (List.assoc_opt "k" s.Stmt_poly.hw.Stmt_poly.unrolls);
  (* splitting a dim that carries hw attributes is rejected *)
  Alcotest.(check bool) "split of attributed dim rejected" true
    (try
       ignore (Transform.split s "j" 2 ~outer:"a" ~inner:"b");
       false
     with Transform.Transform_error _ -> true)

let test_errors () =
  Alcotest.(check bool) "unknown dim" true
    (try
       ignore (Transform.interchange (stmt 4) "i" "zz");
       false
     with Transform.Transform_error _ -> true);
  Alcotest.(check bool) "fresh name collision" true
    (try
       ignore (Transform.split (stmt 4) "i" 2 ~outer:"j" ~inner:"i1");
       false
     with Transform.Transform_error _ -> true)

(* random transformation pipelines preserve the executed point set *)
let transform_gen =
  QCheck.Gen.(
    list_size (int_range 0 4)
      (oneof
         [
           return `Interchange_ij;
           return `Interchange_jk;
           map (fun f -> `Split_i (2 + f)) (int_range 0 2);
           map (fun f -> `Skew_ij f) (int_range 1 3);
         ]))

let apply_step (s, n) step =
  let fresh = Printf.sprintf "d%d" n in
  let fresh2 = Printf.sprintf "e%d" n in
  try
    let order = Stmt_poly.loop_order s in
    match step with
    | `Interchange_ij when List.length order >= 2 ->
        (Transform.interchange s (List.nth order 0) (List.nth order 1), n + 1)
    | `Interchange_jk when List.length order >= 3 ->
        (Transform.interchange s (List.nth order 1) (List.nth order 2), n + 1)
    | `Split_i f ->
        (Transform.split s (List.hd order) f ~outer:fresh ~inner:fresh2, n + 1)
    | `Skew_ij f when List.length order >= 2 ->
        ( Transform.skew s (List.nth order 0) (List.nth order 1) f 1 ~n1:fresh
            ~n2:fresh2,
          n + 1 )
    | _ -> (s, n)
  with Transform.Transform_error _ -> (s, n)

let prop_points_invariant =
  QCheck.Test.make ~name:"random transform pipelines preserve points" ~count:60
    (QCheck.make transform_gen) (fun steps ->
      let s0 = stmt 3 in
      let expected = Transform.original_points s0 in
      let s, _ = List.fold_left apply_step (s0, 0) steps in
      Transform.original_points s = expected)

let () =
  Alcotest.run "transform"
    [
      ( "unit",
        [
          Alcotest.test_case "interchange" `Quick test_interchange;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "split non-divisible" `Quick test_split_non_divisible;
          Alcotest.test_case "tile" `Quick test_tile;
          Alcotest.test_case "tile adjacency" `Quick test_tile_requires_adjacent;
          Alcotest.test_case "skew" `Quick test_skew;
          Alcotest.test_case "skew negative factor" `Quick test_skew_negative_factor;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "sequence after" `Quick test_sequence_after;
          Alcotest.test_case "hardware attributes" `Quick test_hw_attrs;
          Alcotest.test_case "error cases" `Quick test_errors;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_points_invariant ]);
    ]
