open Pom_poly

let v = Linexpr.var

let c = Linexpr.const

let box dims_bounds =
  Basic_set.make
    (List.map (fun (d, _, _) -> d) dims_bounds)
    (List.concat_map
       (fun (d, lo, hi) ->
         [ Constr.ge (v d) (c lo); Constr.le (v d) (c (hi - 1)) ])
       dims_bounds)

let side ?(pos = 0) dims_bounds order array indices =
  {
    Dep2.domain = box dims_bounds;
    sched = Sched.set_const (Sched.initial order) 0 pos;
    access = Dep.access array indices;
  }

(* producer S0 writes B(i), consumer S1 reads B(i), sequenced S0 then S1 *)
let test_forward_producer_consumer () =
  let s0 = side ~pos:0 [ ("i", 0, 8) ] [ "i" ] "B" [ v "i" ] in
  let s1 = side ~pos:1 [ ("i", 0, 8) ] [ "i" ] "B" [ v "i" ] in
  Alcotest.(check bool) "forward dependence exists" true
    (Dep2.exists_forward ~source:s0 ~sink:s1);
  Alcotest.(check bool) "no backward pair" false
    (Dep2.exists_backward ~source:s0 ~sink:s1)

let test_reversed_sequencing_flips () =
  (* same accesses, but the consumer is scheduled first *)
  let s0 = side ~pos:1 [ ("i", 0, 8) ] [ "i" ] "B" [ v "i" ] in
  let s1 = side ~pos:0 [ ("i", 0, 8) ] [ "i" ] "B" [ v "i" ] in
  Alcotest.(check bool) "backward pair exists" true
    (Dep2.exists_backward ~source:s0 ~sink:s1);
  Alcotest.(check bool) "no forward pair" false
    (Dep2.exists_forward ~source:s0 ~sink:s1)

let test_different_arrays_never_conflict () =
  let s0 = side ~pos:0 [ ("i", 0, 8) ] [ "i" ] "B" [ v "i" ] in
  let s1 = side ~pos:1 [ ("i", 0, 8) ] [ "i" ] "C" [ v "i" ] in
  Alcotest.(check bool) "no conflict" false
    (Dep2.exists_forward ~source:s0 ~sink:s1)

(* fused ping-pong: writer at (t, i), reader of the shifted element at
   (t, i+1) in the same time step -- the time loop carries part of the
   conflict, the inner position the rest *)
let test_fused_time_loop () =
  let w =
    {
      Dep2.domain = box [ ("t", 0, 4); ("i", 1, 7) ];
      sched = Sched.initial [ "t"; "i" ];
      access = Dep.access "A" [ v "i" ];
    }
  in
  let r =
    {
      Dep2.domain = box [ ("t", 0, 4); ("i", 1, 7) ];
      sched = Sched.set_const (Sched.initial [ "t"; "i" ]) 1 1;
      access = Dep.access "A" [ Linexpr.sub (v "i") (c 1) ];
    }
  in
  Alcotest.(check bool) "conflict exists" true (Dep2.exists_forward ~source:w ~sink:r)

let test_time_distance () =
  (* S0 writes B(i) at time (0, i, 0); S1 reads B(i) at (0, i, 1) fused:
     distance at the loop level is 0, at the inner scalar level is 1 *)
  let s0 = side [ ("i", 0, 8) ] [ "i" ] "B" [ v "i" ] in
  let s1 =
    {
      Dep2.domain = box [ ("i", 0, 8) ];
      sched = Sched.set_const (Sched.initial [ "i" ]) 1 1;
      access = Dep.access "B" [ v "i" ];
    }
  in
  match Dep2.time_distance ~source:s0 ~sink:s1 with
  | Some [ _, _; Some lo, Some hi; Some slo, _ ] ->
      Alcotest.(check (pair int int)) "loop-level distance zero" (0, 0) (lo, hi);
      Alcotest.(check int) "scalar sequenced" 1 slo
  | _ -> Alcotest.fail "expected three-level distance"

let test_order_branches () =
  (* (0, x, 0) < (0, y, 1): either x < y, or x = y (scalar 0 < 1) *)
  let a = [ Dep2.C 0; Dep2.V (v "x"); Dep2.C 0 ] in
  let b = [ Dep2.C 0; Dep2.V (v "y"); Dep2.C 1 ] in
  Alcotest.(check int) "two branches" 2
    (List.length (Dep2.order_branches a b));
  (* (1, x) < (0, y) is impossible at the leading scalar *)
  let a' = [ Dep2.C 1; Dep2.V (v "x") ] in
  let b' = [ Dep2.C 0; Dep2.V (v "y") ] in
  Alcotest.(check int) "statically dead" 0
    (List.length (Dep2.order_branches a' b'))

let test_align () =
  let a, b = Dep2.align [ Dep2.C 0 ] [ Dep2.C 0; Dep2.V (v "x"); Dep2.C 0 ] in
  Alcotest.(check int) "padded" (List.length b) (List.length a)

let () =
  Alcotest.run "dep2"
    [
      ( "unit",
        [
          Alcotest.test_case "producer/consumer forward" `Quick
            test_forward_producer_consumer;
          Alcotest.test_case "reversed sequencing" `Quick
            test_reversed_sequencing_flips;
          Alcotest.test_case "different arrays" `Quick
            test_different_arrays_never_conflict;
          Alcotest.test_case "fused time loop" `Quick test_fused_time_loop;
          Alcotest.test_case "time distance" `Quick test_time_distance;
          Alcotest.test_case "order branches" `Quick test_order_branches;
          Alcotest.test_case "alignment" `Quick test_align;
        ] );
    ]
