open Pom_dsl
open Pom_polyir
open Expr

let f32 = Dtype.p_float32

let gemm_func n =
  let f = Func.create "gemm" in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  let d = Placeholder.make "D" [ n; n ] f32 in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  ignore
    (Func.compute f "s" ~iters:[ k; i; j ]
       ~body:
         (access d [ ix i; ix j ]
         +: (access a [ ix i; ix k ] *: access b [ ix k; ix j ]))
       ~dest:(d, [ ix i; ix j ]) ());
  f

let emit func = Pom_emit.Emit.hls_c (Pom_affine.Lower.lower (Prog.of_func func))

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_signature () =
  let c = emit (gemm_func 8) in
  Alcotest.(check bool) "function signature" true
    (contains c "void gemm(float A[8][8], float B[8][8], float D[8][8])")

let test_loop_structure () =
  let c = emit (gemm_func 8) in
  Alcotest.(check bool) "for loop" true
    (contains c "for (int c0 = 0; c0 <= 7; c0++)");
  Alcotest.(check bool) "statement" true (contains c "D[c1][c2] = (D[c1][c2] + (A[c1][c0] * B[c0][c2]));")

let test_pragmas () =
  let f = gemm_func 8 in
  Func.schedule f (Schedule.pipeline "s" "i" 2);
  Func.schedule f (Schedule.unroll "s" "j" 4);
  Func.schedule f (Schedule.partition "A" [ 2; 4 ] Schedule.Block);
  let c = emit f in
  Alcotest.(check bool) "pipeline pragma" true (contains c "#pragma HLS pipeline II=2");
  Alcotest.(check bool) "unroll pragma" true (contains c "#pragma HLS unroll factor=4");
  Alcotest.(check bool) "partition dim 1" true
    (contains c "#pragma HLS array_partition variable=A block factor=2 dim=1");
  Alcotest.(check bool) "partition dim 2" true
    (contains c "#pragma HLS array_partition variable=A block factor=4 dim=2")

let test_skewed_bounds () =
  let f = gemm_func 8 in
  Func.schedule f (Schedule.skew "s" "i" "j" 1 1 "is" "js");
  Func.schedule f (Schedule.interchange "s" "js" "is");
  let c = emit f in
  (* skew produces parametric max/min bounds *)
  Alcotest.(check bool) "imax bound" true (contains c "imax(");
  Alcotest.(check bool) "imin bound" true (contains c "imin(")

let test_minmax_emission () =
  let n = 4 in
  let i = Var.make "i" 0 n in
  let a = Placeholder.make "A" [ n ] f32 in
  let b = Placeholder.make "B" [ n ] f32 in
  let f = Func.create "clip" in
  ignore
    (Func.compute f "s" ~iters:[ i ]
       ~body:(min_ (access a [ ix i ]) (fconst 1.0))
       ~dest:(b, [ ix i ]) ());
  Alcotest.(check bool) "fminf" true (contains (emit f) "fminf(")

let test_mlir_structure () =
  let f = gemm_func 8 in
  Func.schedule f (Schedule.pipeline "s" "i" 1);
  Func.schedule f (Schedule.unroll "s" "j" 4);
  Func.schedule f (Schedule.partition "A" [ 2; 4 ] Schedule.Cyclic);
  let m = Pom_emit.Emit_mlir.mlir (Pom_affine.Lower.lower (Prog.of_func f)) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mlir contains " ^ needle) true (contains m needle))
    [
      "func.func @gemm";
      "memref<8x8xf32>";
      "affine.for %c0 = 0 to 8";
      "affine.load %D[%c1, %c2] : memref<8x8xf32>";
      "arith.mulf";
      "arith.addf";
      "affine.store";
      "{hls.pipeline_ii = 1 : i32}";
      "{hls.unroll = 4 : i32}";
      "hls.partition = [2, 4]";
      "return";
    ]

let test_mlir_ssa_numbering () =
  let f = gemm_func 8 in
  let m = Pom_emit.Emit_mlir.mlir (Pom_affine.Lower.lower (Prog.of_func f)) in
  (* three loads + mul + add = SSA values %0..%4 *)
  Alcotest.(check bool) "last ssa value" true (contains m "%4 = arith.addf");
  Alcotest.(check bool) "stores the sum" true (contains m "affine.store %4")

let test_mlir_int_types () =
  let m =
    Pom_emit.Emit_mlir.mlir
      (Pom_affine.Lower.lower
         (Prog.of_func (Pom_workloads.Polybench.gemm_typed Dtype.p_int16 8)))
  in
  Alcotest.(check bool) "integer memref" true (contains m "memref<8x8xi16>");
  Alcotest.(check bool) "integer arith" true (contains m "arith.muli")

let test_mlir_split_indices () =
  let f = gemm_func 8 in
  Func.schedule f (Schedule.split "s" "j" 4 "j0" "j1");
  let m = Pom_emit.Emit_mlir.mlir (Pom_affine.Lower.lower (Prog.of_func f)) in
  Alcotest.(check bool) "affine index expression" true
    (contains m "%c2 * 4 + %c3" || contains m "%c3 + %c2 * 4")

let test_loc () =
  Alcotest.(check int) "loc counts non-empty lines" 3
    (Pom_emit.Emit.loc "a\n\n  \nb\nc\n");
  let c = emit (gemm_func 8) in
  Alcotest.(check bool) "gemm C is non-trivial" true (Pom_emit.Emit.loc c > 8)

let () =
  Alcotest.run "emit"
    [
      ( "unit",
        [
          Alcotest.test_case "signature" `Quick test_signature;
          Alcotest.test_case "loop structure" `Quick test_loop_structure;
          Alcotest.test_case "pragmas" `Quick test_pragmas;
          Alcotest.test_case "skewed bounds" `Quick test_skewed_bounds;
          Alcotest.test_case "min/max emission" `Quick test_minmax_emission;
          Alcotest.test_case "line counting" `Quick test_loc;
          Alcotest.test_case "mlir structure" `Quick test_mlir_structure;
          Alcotest.test_case "mlir ssa numbering" `Quick test_mlir_ssa_numbering;
          Alcotest.test_case "mlir integer types" `Quick test_mlir_int_types;
          Alcotest.test_case "mlir split indices" `Quick test_mlir_split_indices;
        ] );
    ]
