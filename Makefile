# Developer / CI entry points.  `make check` is the CI gate:
# formatting-clean, full build, full test suite, then one instrumented
# end-to-end compile per framework.

.PHONY: all build test fmt fmt-check smoke fuzz check clean

all: build

build:
	dune build

test:
	dune runtest

# Reformat the dune files in place (ocamlformat is not available in this
# environment, so formatting covers dune files only — see dune-project).
fmt:
	dune fmt

# Fail when any dune file is not formatted.
fmt-check:
	dune build @fmt

# One PolyBench kernel per framework through the instrumented pipeline;
# any nonzero exit fails the target.
SMOKE_SIZE := 64
smoke: build
	dune exec bin/pom_compile.exe -- -w gemm    -s $(SMOKE_SIZE) -f baseline   --timing
	dune exec bin/pom_compile.exe -- -w bicg    -s $(SMOKE_SIZE) -f pluto      --timing
	dune exec bin/pom_compile.exe -- -w gesummv -s $(SMOKE_SIZE) -f polsca     --timing
	dune exec bin/pom_compile.exe -- -w 2mm     -s $(SMOKE_SIZE) -f scalehls   --timing
	dune exec bin/pom_compile.exe -- -w bicg    -s $(SMOKE_SIZE) -f pom-manual --timing
	dune exec bin/pom_compile.exe -- -w gemm    -s $(SMOKE_SIZE) -f pom        --timing --trace

# Property-based refutation: replay the committed counterexample corpus,
# then search fresh cases in all three oracle families under a wall-clock
# budget.  Exit 2 = counterexample found; the shrunk repro is saved into
# $(FUZZ_CORPUS) ready to commit as a regression test.
FUZZ_SECONDS := 60
FUZZ_CASES := 100000
FUZZ_SEED := 0
FUZZ_CORPUS := test/refute-corpus
fuzz: build
	dune exec bin/pom_refute.exe -- \
	  --seed $(FUZZ_SEED) --cases $(FUZZ_CASES) --budget $(FUZZ_SECONDS) \
	  --corpus $(FUZZ_CORPUS)

check: fmt-check build test smoke

clean:
	dune clean
