(* Refutation-engine throughput: cases/second per oracle family at a fixed
   seed, plus corpus replay latency.  Results go to BENCH_refute.json for
   the CI smoke job — a throughput collapse means a generator or oracle
   regressed into pathological work (e.g. an enumeration that stopped
   respecting the case's bounding box). *)

module Engine = Pom.Refute.Engine

let seed = 7

(* per-family case counts sized so the whole experiment stays in seconds:
   poly cases are microseconds, degrade cases each run five compiles *)
let families =
  [ (`Poly, 5_000); (`Semantic, 500); (`Degrade, 50) ]

let corpus_dir = "test/refute-corpus"

let run () =
  Util.section
    (Printf.sprintf "BENCH refute | oracle throughput, seed %d" seed);
  let rows =
    List.map
      (fun (family, cases) ->
        let s = Engine.run ~seed ~cases family in
        let rate =
          if s.Engine.elapsed_s > 0. then
            float_of_int s.Engine.cases /. s.Engine.elapsed_s
          else 0.
        in
        (Engine.family_name family, s, rate))
      families
  in
  let t0 = Unix.gettimeofday () in
  let replayed =
    if Sys.file_exists corpus_dir then Engine.replay corpus_dir else []
  in
  let replay_s = Unix.gettimeofday () -. t0 in
  let replay_regressions =
    List.length
      (List.filter (fun (_, _, v) -> Pom.Refute.Oracle.is_fail v) replayed)
  in
  Util.print_table
    [ "family"; "cases"; "cases/s"; "skip"; "precision"; "counterexamples" ]
    (List.map
       (fun (name, s, rate) ->
         [
           name;
           string_of_int s.Engine.cases;
           Printf.sprintf "%.0f" rate;
           string_of_int s.Engine.skipped;
           string_of_int s.Engine.precision_misses;
           string_of_int (List.length s.Engine.findings);
         ])
       rows);
  Printf.printf "corpus replay: %d case(s) in %.3fs, %d regression(s)\n"
    (List.length replayed) replay_s replay_regressions;
  let oc = open_out "BENCH_refute.json" in
  Printf.fprintf oc "{\n  \"seed\": %d,\n  \"families\": [\n" seed;
  List.iteri
    (fun i (name, s, rate) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"cases\": %d, \"elapsed_s\": %.6f, \
         \"cases_per_s\": %.1f, \"passed\": %d, \"skipped\": %d, \
         \"precision_misses\": %d, \"counterexamples\": %d }%s\n"
        name s.Engine.cases s.Engine.elapsed_s rate s.Engine.passed
        s.Engine.skipped s.Engine.precision_misses
        (List.length s.Engine.findings)
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"corpus\": { \"cases\": %d, \"replay_s\": %.6f, \"regressions\": %d \
     }\n\
     }\n"
    (List.length replayed) replay_s replay_regressions;
  close_out oc;
  Printf.printf "\nwrote BENCH_refute.json\n";
  let findings =
    List.concat_map (fun (_, s, _) -> s.Engine.findings) rows
  in
  if findings <> [] || replay_regressions > 0 then begin
    Printf.eprintf
      "BENCH refute: counterexamples found — run bin/pom_refute to shrink \
       and save them\n";
    exit 1
  end
