(* Compile-server benchmark: cold request vs warm-memo recompile vs pure
   response-cache hit, against an in-process --serve daemon on a temp
   socket.  Three measurements per kernel:

   - cold:      first request for the design point (memo and response
                cache both empty for that key);
   - warm_memo: same request with the response cache bypassed
                ([use_cache = false]) — a full recompile on warm
                schedule/report/plan memo tables;
   - warm_hit:  same request served verbatim from the cross-request
                response cache.

   The acceptance gate rides along: the warm responses must be
   bit-identical to the cold one (compared on the wire encoding), the
   warm recompile must hit the report/plan memo at least once, and both
   warm paths must be measurably faster.  Results go to BENCH_serve.json
   for the CI smoke job. *)

module Server = Pom_server.Server
module Client = Pom_server.Client
module Protocol = Pom_server.Protocol
module Wire = Pom_wire.Wire

let size = 512

let kernels =
  [
    ("gemm", fun () -> Pom.Workloads.Polybench.gemm size);
    ("2mm", fun () -> Pom.Workloads.Polybench.mm2 size);
    ("bicg", fun () -> Pom.Workloads.Polybench.bicg size);
  ]

let repeats = 3

type meas = {
  name : string;
  cold : Protocol.response;
  warm_memo : Protocol.response;
  warm_hit : Protocol.response;
  cold_client_s : float;
  warm_memo_client_s : float;
  warm_hit_client_s : float;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Warm measurements are best-of-N (steady state); the cold one is by
   nature a single shot — the first request for the key. *)
let best_of ~socket req =
  let best = ref None in
  for _ = 1 to repeats do
    let r, dt = timed (fun () -> Client.compile ~socket req) in
    match !best with
    | Some (_, b) when b <= dt -> ()
    | _ -> best := Some (r, dt)
  done;
  Option.get !best

let result_bytes (r : Protocol.response) =
  match r.Protocol.outcome with
  | Ok v -> Wire.to_string Protocol.result_codec v
  | Error e -> failwith (Printf.sprintf "%s: %s" e.Protocol.code e.Protocol.message)

(* The design must be bit-identical across cold and warm compiles; the
   measurement fields legitimately are not — a recompile reports its own
   search time, and the trace narrates its own memo hits.  Strip those
   before comparing, so the check is exactly "same artifact", not "same
   stopwatch". *)
let design_bytes (r : Protocol.response) =
  match r.Protocol.outcome with
  | Ok v ->
      Wire.to_string Protocol.result_codec
        { v with Protocol.dse_time_s = 0.0; trace = [] }
  | Error e -> failwith (Printf.sprintf "%s: %s" e.Protocol.code e.Protocol.message)

let measure ~socket (name, build) =
  let req = Client.request ~framework:`Pom_auto (build ()) in
  let cold, cold_client_s = timed (fun () -> Client.compile ~socket req) in
  let warm_memo, warm_memo_client_s =
    best_of ~socket { req with Protocol.use_cache = false }
  in
  let warm_hit, warm_hit_client_s = best_of ~socket req in
  { name; cold; warm_memo; warm_hit; cold_client_s; warm_memo_client_s;
    warm_hit_client_s }

let run () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pom-bench-%d.sock" (Unix.getpid ()))
  in
  let server = Server.start ~socket () in
  let rows =
    Fun.protect
      ~finally:(fun () ->
        Server.request_stop server;
        Server.join server;
        if Sys.file_exists socket then Sys.remove socket)
      (fun () -> List.map (measure ~socket) kernels)
  in
  let stats =
    (* counters survive past join: read them before the handle dies *)
    Server.stats server
  in
  let ok = ref true in
  Printf.printf
    "compile server (size %d, %d repeats): cold vs warm-memo vs cache hit\n\n"
    size repeats;
  Printf.printf "%-8s %12s %12s %12s %8s %8s %14s %s\n" "kernel" "cold(s)"
    "warm-memo(s)" "hit-rtt(s)" "memo-x" "hit-x" "rep/plan hits" "identical";
  List.iter
    (fun m ->
      let identical =
        (* a cache hit replays the stored bytes: strictly identical; a
           memo-warm recompile reproduces the design, not the stopwatch *)
        result_bytes m.cold = result_bytes m.warm_hit
        && design_bytes m.cold = design_bytes m.warm_memo
      in
      let memo = m.warm_memo.Protocol.memo in
      let hits_ok =
        memo.Protocol.report_hits >= 1 && memo.Protocol.plan_hits >= 1
      in
      let faster =
        m.warm_memo.Protocol.wall_s < m.cold.Protocol.wall_s
        && m.warm_hit_client_s < m.cold_client_s
      in
      if not (identical && hits_ok && faster) then ok := false;
      Printf.printf "%-8s %12.4f %12.4f %12.4f %8.1f %8.1f %8d/%-5d %s\n"
        m.name m.cold.Protocol.wall_s m.warm_memo.Protocol.wall_s
        m.warm_hit_client_s
        (m.cold.Protocol.wall_s /. Float.max 1e-9 m.warm_memo.Protocol.wall_s)
        (m.cold_client_s /. Float.max 1e-9 m.warm_hit_client_s)
        memo.Protocol.report_hits memo.Protocol.plan_hits
        (if identical then "yes" else "NO"))
    rows;
  Printf.printf
    "\nserver: %d requests, cache %d hits / %d misses (%d entries)\n"
    stats.Protocol.requests stats.Protocol.cache_hits
    stats.Protocol.cache_misses stats.Protocol.cache_entries;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"size\": %d,\n\
    \  \"repeats\": %d,\n\
    \  \"cache_hits\": %d,\n\
    \  \"cache_misses\": %d,\n\
    \  \"cache_entries\": %d,\n\
    \  \"kernels\": [\n"
    size repeats stats.Protocol.cache_hits stats.Protocol.cache_misses
    stats.Protocol.cache_entries;
  List.iteri
    (fun i m ->
      let memo = m.warm_memo.Protocol.memo in
      Printf.fprintf oc
        "    { \"name\": %S, \"cold_wall_s\": %.6f, \"warm_memo_wall_s\": \
         %.6f,\n\
        \      \"warm_hit_wall_s\": %.6f, \"cold_client_s\": %.6f, \
         \"warm_memo_client_s\": %.6f, \"warm_hit_client_s\": %.6f,\n\
        \      \"warm_memo_speedup\": %.4f, \"warm_hit_speedup\": %.4f,\n\
        \      \"report_hits\": %d, \"report_misses\": %d, \"plan_hits\": \
         %d, \"plan_misses\": %d,\n\
        \      \"bit_identical\": %b }%s\n"
        m.name m.cold.Protocol.wall_s m.warm_memo.Protocol.wall_s
        m.warm_hit.Protocol.wall_s m.cold_client_s m.warm_memo_client_s
        m.warm_hit_client_s
        (m.cold.Protocol.wall_s /. Float.max 1e-9 m.warm_memo.Protocol.wall_s)
        (m.cold_client_s /. Float.max 1e-9 m.warm_hit_client_s)
        memo.Protocol.report_hits memo.Protocol.report_misses
        memo.Protocol.plan_hits memo.Protocol.plan_misses
        (result_bytes m.cold = result_bytes m.warm_hit
        && design_bytes m.cold = design_bytes m.warm_memo)
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_serve.json\n";
  if not !ok then
    Printf.eprintf
      "bench serve: warm responses diverged from cold (identity, memo hits, \
       or wall-clock) — investigate before trusting the cache\n"
