(* The full experiment harness: regenerate every table and figure of the
   paper's evaluation (Section VII), then run one bechamel micro-benchmark
   per experiment measuring its core toolchain path.

   Usage:
     dune exec bench/main.exe            -- all experiments + bechamel
     dune exec bench/main.exe <id>       -- one experiment
     dune exec bench/main.exe bechamel   -- only the timing section *)

(* worker-domain budget for the dse experiment (-j/--jobs) *)
let jobs_flag = ref (max 4 Pom.Par.default_jobs)

(* how the dse experiment spends that budget (--jobs-mode) *)
let mode_flag = ref Pom.Par.Domains

(* target items per work-stealing chunk for the dse experiment (--chunk) *)
let chunk_flag = ref Pom.Par.default_chunk

let experiments =
  [
    ( "dse",
      fun () ->
        Pom.Par.set_chunk !chunk_flag;
        Bench_dse.run ~jobs:!jobs_flag ~mode:!mode_flag () );
    ("fig2", Bench_fig2.run);
    ("table3", Bench_table3.run);
    ("fig11", Bench_fig11.run);
    ("table4", Bench_table4.run);
    ("fig12", Bench_fig12.run);
    ("table5", Bench_table5.run);
    ("table6", Bench_table6.run);
    ("fig13", Bench_fig13.run);
    ("table7", Bench_table7.run);
    ("fig14", Bench_fig14.run);
    ("fig15", Bench_fig15.run);
    ("fig16", Bench_fig16.run);
    ("ablation", Bench_ablation.run);
    ("generality", Bench_generality.run);
    ("devices", Bench_devices.run);
    ("refute", Bench_refute.run);
    ("serve", Bench_serve.run);
    ("chaos", Bench_chaos.run);
  ]

(* one bechamel Test per table/figure, timing the dominant toolchain path
   of that experiment at a reduced problem size *)
let bechamel_tests =
  let open Bechamel in
  let dse build = Staged.stage (fun () -> ignore (Pom.Dse.Engine.run (build ()))) in
  let compile fw build =
    Staged.stage (fun () -> ignore (Util.compile fw (build ())))
  in
  [
    Test.make ~name:"fig2:bicg-pom-dse" (dse (fun () -> Pom.Workloads.Polybench.bicg 512));
    Test.make ~name:"table3:gemm-pom-dse" (dse (fun () -> Pom.Workloads.Polybench.gemm 512));
    Test.make ~name:"fig11:2mm-constrained"
      (Staged.stage (fun () ->
           let device = Pom.Hls.Device.scale 0.5 Util.device in
           ignore (Util.compile ~device `Pom_auto (Pom.Workloads.Polybench.mm2 512))));
    Test.make ~name:"table4:bicg-manual"
      (Staged.stage (fun () -> ignore (Pom.Baselines.Manual.bicg 512)));
    Test.make ~name:"fig12:gemm-scalehls"
      (compile `Scalehls (fun () -> Pom.Workloads.Polybench.gemm 512));
    Test.make ~name:"table5:blur-pom-dse" (dse (fun () -> Pom.Workloads.Image.blur 512));
    Test.make ~name:"table6:gaussian-pom-dse"
      (dse (fun () -> Pom.Workloads.Image.gaussian 512));
    Test.make ~name:"fig13:resnet-synthesis"
      (Staged.stage (fun () ->
           let prog =
             Pom.Polyir.Prog.of_func_unscheduled (Pom.Workloads.Dnn.resnet18 ())
           in
           ignore (Pom.Hls.Report.synthesize ~device:Util.device prog)));
    Test.make ~name:"table7:seidel-pom-dse"
      (dse (fun () -> Pom.Workloads.Polybench.seidel ~tsteps:8 256));
    Test.make ~name:"fig14:2mm-manual-schedule"
      (compile `Pom_manual (fun () -> Pom.Workloads.Polybench.mm2 256));
    Test.make ~name:"fig15:gemm-emit"
      (Staged.stage (fun () ->
           let prog = Pom.Polyir.Prog.of_func (Pom.Workloads.Polybench.gemm 256) in
           ignore (Pom.Emit.Emit.hls_c (Pom.Affine.Lower.lower prog))));
    Test.make ~name:"fig16:jacobi-pom-dse"
      (dse (fun () -> Pom.Workloads.Polybench.jacobi1d ~tsteps:16 512));
  ]

let run_bechamel () =
  let open Bechamel in
  Util.section "Bechamel | toolchain-path timings (one per experiment)";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"pom" ~fmt:"%s %s" bechamel_tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "  %-32s %12.0f ns/run\n" name est
      | Some [] | None -> Printf.printf "  %-32s (no estimate)\n" name)
    results

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec strip = function
    | ("-j" | "--jobs") :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs_flag := j
        | Some _ | None ->
            Printf.eprintf "-j expects a positive integer, got %s\n" n;
            exit 1);
        strip rest
    | "--jobs-mode" :: m :: rest ->
        (match Pom.Par.mode_of_string m with
        | Ok mode -> mode_flag := mode
        | Error msg ->
            prerr_endline msg;
            exit 1);
        strip rest
    | "--chunk" :: n :: rest ->
        (match int_of_string_opt n with
        | Some c when c >= 1 -> chunk_flag := c
        | Some _ | None ->
            Printf.eprintf "--chunk expects a positive integer, got %s\n" n;
            exit 1);
        strip rest
    | x :: rest -> x :: strip rest
    | [] -> []
  in
  match strip args with
  | [] ->
      List.iter (fun (_, run) -> run ()) experiments;
      run_bechamel ()
  | [ "bechamel" ] ->
      run_bechamel ();
      Pom.Par.set_chunk !chunk_flag;
      Bench_dse.run ~jobs:!jobs_flag ~mode:!mode_flag ()
  | ids ->
      List.iter
        (fun id ->
          match List.assoc_opt id experiments with
          | Some run -> run ()
          | None ->
              Printf.eprintf "unknown experiment %s (known: %s, bechamel)\n" id
                (String.concat ", " (List.map fst experiments));
              exit 1)
        ids
