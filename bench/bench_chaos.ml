(* Seeded chaos soak over the self-healing surface: one driver process
   spawns real pom_compile daemons, clients, and procs workers, injects
   deterministic faults between them, and asserts the three invariants
   every failure mode must preserve:

   - no hangs:      every spawned process finishes inside its watchdog
                    and the whole soak inside a global deadline;
   - exit contract: 0 for a served or fallback compile, 3 for a typed
                    resilience abort, never anything else;
   - bit-identity:  the design lines (report, speedup, tiles) match a
                    clean golden compile byte-for-byte, whoever produced
                    them — server, respawned executor, journal replay,
                    or the client's local fallback.

   Four scenarios, interleaved under a seeded schedule:

   - worker-kill:       POM_FAULTS dse:worker-kill kills procs DSE
                        workers mid-chunk; supervision respawns them (or
                        exhausts its budget and the search degrades to
                        the in-process path) — either way exit 0 and the
                        golden design;
   - daemon-kill:       kill -9 the --serve daemon while a --connect
                        client is in flight; the client retries, then
                        compiles locally — exit 0, golden design;
   - journal-truncate:  chop the tail off the response-cache journal
                        between daemon runs; the restart truncates the
                        torn record and still serves the golden design;
   - executor-crash:    server:executor=fail@1 crashes the executor on
                        the first request (typed POM312, exit 3); the
                        respawned executor serves the second request
                        (exit 0, golden design) and --health reports the
                        respawn.

   The schedule is a splitmix-style PRNG seeded from POM_CHAOS_SEED
   (default 42): kill delays, truncation lengths, and scenario order are
   all derived from it, so a failing soak replays exactly.  Results go
   to BENCH_chaos.json for the CI chaos-smoke job. *)

let size = 96
let rounds_per_scenario =
  match Sys.getenv_opt "POM_CHAOS_ROUNDS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2)
  | None -> 2

let soak_deadline_s = 240.0

let seed =
  match Sys.getenv_opt "POM_CHAOS_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 42)
  | None -> 42

(* splitmix-style stream: the whole fault schedule derives from [seed] *)
let prng_state = ref (Int64.of_int (seed lxor 0x9E3779B9))

let next_int bound =
  let open Int64 in
  prng_state := add !prng_state 0x9E3779B97F4A7C15L;
  let z = !prng_state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  Int64.to_int (logand z 0x3FFFFFFFL) mod bound

let exe =
  lazy
    (let self = Sys.executable_name in
     let sibling =
       Filename.concat (Filename.dirname self)
         (Filename.concat Filename.parent_dir_name
            (Filename.concat "bin" "pom_compile.exe"))
     in
     if Sys.file_exists sibling then sibling
     else "pom_compile.exe" (* PATH fallback for installed trees *))

let tmp name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pom-chaos-%d-%s" (Unix.getpid ()) name)

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = go [] in
    close_in ic;
    lines
  end

(* Replace any existing binding so the child sees exactly our value. *)
let env_with overrides =
  let keys = List.map fst overrides in
  let kept =
    Array.to_list (Unix.environment ())
    |> List.filter (fun kv ->
           match String.index_opt kv '=' with
           | Some i -> not (List.mem (String.sub kv 0 i) keys)
           | None -> true)
  in
  Array.of_list (kept @ List.map (fun (k, v) -> k ^ "=" ^ v) overrides)

type outcome = Exited of int | Hang

(* Spawn with stdout/stderr to files; SIGKILL on watchdog expiry. *)
let spawn ?(env = []) args =
  let out = tmp (Printf.sprintf "out-%d" (next_int 1_000_000)) in
  let err = out ^ ".err" in
  let fd flags p = Unix.openfile p flags 0o600 in
  let fd_out = fd [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] out in
  let fd_err = fd [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] err in
  let argv = Array.of_list (Lazy.force exe :: args) in
  let pid =
    Unix.create_process_env argv.(0) argv (env_with env) Unix.stdin fd_out
      fd_err
  in
  Unix.close fd_out;
  Unix.close fd_err;
  (pid, out, err)

let wait_with_timeout ?(timeout_s = 90.0) pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          Hang
        end
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    | _, Unix.WEXITED c -> Exited c
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> Exited 255
  in
  go ()

let run_cli ?env ?timeout_s args =
  let pid, out, err = spawn ?env args in
  let st = wait_with_timeout ?timeout_s pid in
  let lines = read_lines out and errs = read_lines err in
  (try Sys.remove out with Sys_error _ -> ());
  (try Sys.remove err with Sys_error _ -> ());
  (st, lines, errs)

(* The design fingerprint: everything the compile *produced*, none of
   what narrates *who* produced it (served:, DSE time:, trace:, retry
   notes live on stderr anyway). *)
let design_lines lines =
  List.filter
    (fun l ->
      let pfx p =
        String.length l >= String.length p && String.sub l 0 (String.length p) = p
      in
      pfx "workload:" || pfx "framework:" || pfx "report:" || pfx "speedup:"
      || pfx "tiles ")
    lines

let base_args = [ "-w"; "gemm"; "-s"; string_of_int size; "-f"; "pom" ]

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let any_line_with needle lines = List.exists (fun l -> contains_sub l needle) lines

type verdict = { scenario : string; round : int; pass : bool; detail : string }

let golden = ref []

let check ~scenario ~round ~expect_exit (st, lines, errs) =
  match st with
  | Hang -> { scenario; round; pass = false; detail = "process hung (killed)" }
  | Exited c when c <> expect_exit ->
      {
        scenario;
        round;
        pass = false;
        detail =
          Printf.sprintf "exit %d, expected %d%s" c expect_exit
            (match errs with [] -> "" | e :: _ -> " — " ^ e);
      }
  | Exited _ when expect_exit = 0 && design_lines lines <> !golden ->
      { scenario; round; pass = false; detail = "design diverged from golden" }
  | Exited _ -> { scenario; round; pass = true; detail = "ok" }

(* -- scenarios ---------------------------------------------------------- *)

let worker_kill round =
  let hit = 1 + next_int 4 in
  let r =
    run_cli
      ~env:
        [ ("POM_FAULTS", Printf.sprintf "dse:worker-kill=kill@%d" hit) ]
      (base_args @ [ "--jobs-mode"; "procs"; "-j"; "2" ])
  in
  check ~scenario:"worker-kill" ~round ~expect_exit:0 r

let wait_for_socket path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    if Sys.file_exists path then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let start_daemon ?(extra = []) socket =
  (try Sys.remove socket with Sys_error _ -> ());
  let pid, out, err = spawn ([ "--serve"; socket ] @ extra) in
  if not (wait_for_socket socket) then begin
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid);
    ignore (read_lines err);
    failwith ("daemon never bound " ^ socket)
  end;
  (pid, out, err)

let stop_daemon ?(force = false) socket pid =
  if force then (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
  else ignore (run_cli ~timeout_s:20.0 [ "--stop"; socket ]);
  ignore (wait_with_timeout ~timeout_s:20.0 pid);
  try Sys.remove socket with Sys_error _ -> ()

let daemon_kill round =
  let socket = tmp "daemon-kill.sock" in
  let dpid, dout, derr = start_daemon socket in
  (* launch the client, then murder the daemon somewhere inside the
     exchange window — every interleaving (request not yet sent, in
     flight, already answered) must land on exit 0 + golden design *)
  let cpid, cout, cerr =
    spawn
      (base_args
      @ [ "--connect"; socket; "--retries"; "2"; "--retry-backoff"; "0.05" ])
  in
  Unix.sleepf (float_of_int (next_int 200) /. 1000.0);
  (try Unix.kill dpid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (wait_with_timeout ~timeout_s:20.0 dpid);
  let st = wait_with_timeout cpid in
  let lines = read_lines cout and errs = read_lines cerr in
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ cout; cerr; dout; derr; socket ];
  check ~scenario:"daemon-kill" ~round ~expect_exit:0 (st, lines, errs)

let journal_truncate round =
  let socket = tmp "journal.sock" in
  let journal = tmp "journal.bin" in
  (try Sys.remove journal with Sys_error _ -> ());
  let dpid, _, _ = start_daemon ~extra:[ "--cache-journal"; journal ] socket in
  let warm = run_cli (base_args @ [ "--connect"; socket ]) in
  stop_daemon socket dpid;
  let v1 = check ~scenario:"journal-truncate" ~round ~expect_exit:0 warm in
  if not v1.pass then v1
  else begin
    (* tear the tail: the reopened journal must truncate the torn record
       and keep serving — as a replayed hit or a clean recompile *)
    let len = (Unix.stat journal).Unix.st_size in
    let cut = 1 + next_int 24 in
    Unix.truncate journal (max 0 (len - cut));
    let dpid, _, _ =
      start_daemon ~extra:[ "--cache-journal"; journal ] socket
    in
    let again = run_cli (base_args @ [ "--connect"; socket ]) in
    let health = run_cli ~timeout_s:20.0 [ "--health"; socket ] in
    stop_daemon socket dpid;
    (try Sys.remove journal with Sys_error _ -> ());
    let v2 = check ~scenario:"journal-truncate" ~round ~expect_exit:0 again in
    if not v2.pass then v2
    else begin
      match health with
      | Exited 0, _, _ -> v2
      | _ ->
          {
            scenario = "journal-truncate";
            round;
            pass = false;
            detail = "--health failed after journal replay";
          }
    end
  end

let executor_crash round =
  let socket = tmp "executor.sock" in
  let dpid, _, _ =
    start_daemon ~extra:[ "--inject"; "server:executor=fail@1" ] socket
  in
  let first = run_cli (base_args @ [ "--connect"; socket ]) in
  let second = run_cli (base_args @ [ "--connect"; socket ]) in
  let health = run_cli ~timeout_s:20.0 [ "--health"; socket ] in
  stop_daemon socket dpid;
  let _, _, first_errs = first in
  if
    (match first with Exited 3, _, _ -> false | _ -> true)
    || not (any_line_with "POM312" first_errs)
  then
    {
      scenario = "executor-crash";
      round;
      pass = false;
      detail = "first request did not fail with typed POM312 / exit 3";
    }
  else
    let v = check ~scenario:"executor-crash" ~round ~expect_exit:0 second in
    if not v.pass then v
    else begin
      match health with
      | Exited 0, hlines, _ when any_line_with "1 respawn" hlines -> v
      | _ ->
          {
            scenario = "executor-crash";
            round;
            pass = false;
            detail = "--health did not report the executor respawn";
          }
    end

(* -- driver ------------------------------------------------------------- *)

let run () =
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "chaos soak: seed %d, %d round(s) per scenario, gemm size %d\n\n" seed
    rounds_per_scenario size;
  (* golden design from a clean sequential compile: every chaotic path
     below must reproduce these bytes *)
  (match run_cli (base_args @ [ "-j"; "1" ]) with
  | Exited 0, lines, _ -> golden := design_lines lines
  | _ -> failwith "golden compile failed — cannot calibrate the soak");
  let scenarios =
    [
      ("worker-kill", worker_kill);
      ("daemon-kill", daemon_kill);
      ("journal-truncate", journal_truncate);
      ("executor-crash", executor_crash);
    ]
  in
  (* seeded interleaving: pull rounds from a shuffled deck so daemon and
     worker faults alternate unpredictably but reproducibly *)
  let deck =
    List.concat_map
      (fun (name, f) ->
        List.init rounds_per_scenario (fun i -> (name, f, i + 1)))
      scenarios
  in
  let deck =
    List.map (fun s -> (next_int 1_000_000, s)) deck
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let verdicts =
    List.map
      (fun (_, f, round) ->
        let v = f round in
        Printf.printf "  %-18s round %d: %s%s\n%!" v.scenario v.round
          (if v.pass then "ok" else "FAIL")
          (if v.pass then "" else " — " ^ v.detail);
        v)
      deck
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let failures = List.filter (fun v -> not v.pass) verdicts in
  let in_deadline = elapsed <= soak_deadline_s in
  Printf.printf "\nsoak: %d round(s), %d failure(s), %.1f s (deadline %.0f s)\n"
    (List.length verdicts) (List.length failures) elapsed soak_deadline_s;
  let oc = open_out "BENCH_chaos.json" in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": %d,\n\
    \  \"size\": %d,\n\
    \  \"rounds_per_scenario\": %d,\n\
    \  \"elapsed_s\": %.2f,\n\
    \  \"within_deadline\": %b,\n\
    \  \"rounds\": [\n"
    seed size rounds_per_scenario elapsed in_deadline;
  List.iteri
    (fun i v ->
      Printf.fprintf oc
        "    { \"scenario\": %S, \"round\": %d, \"pass\": %b, \"detail\": %S \
         }%s\n"
        v.scenario v.round v.pass v.detail
        (if i < List.length verdicts - 1 then "," else ""))
    verdicts;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_chaos.json\n";
  if failures <> [] || not in_deadline then begin
    Printf.eprintf
      "bench chaos: %d failing round(s)%s — replay with POM_CHAOS_SEED=%d\n"
      (List.length failures)
      (if in_deadline then "" else " and the soak blew its deadline")
      seed;
    exit 1
  end
