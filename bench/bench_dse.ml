(* DSE wall-clock benchmark: the two-stage search on the paper kernels at
   jobs=1 and jobs=N, each measurement on a cold report memo, plus the
   cross-jobs determinism check (identical directives, tile vectors, and
   report).  Results go to BENCH_dse.json for the CI smoke job. *)

let size = 512

let kernels =
  [
    ("gemm", fun () -> Pom.Workloads.Polybench.gemm size);
    ("2mm", fun () -> Pom.Workloads.Polybench.mm2 size);
    ("bicg", fun () -> Pom.Workloads.Polybench.bicg size);
  ]

let repeats = 3

(* total process CPU seconds, children included — in procs mode the
   evaluation burns inside reaped worker processes, so cutime/cstime is
   where the shards show up *)
let cpu_now () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime +. t.Unix.tms_cutime
  +. t.Unix.tms_cstime

(* best-of-N, fresh memo per run: a warm cache would hide the search cost *)
let measure ~jobs build =
  let best = ref infinity and cpu = ref infinity and outcome = ref None in
  for _ = 1 to repeats do
    let cache = Pom.Pipeline.Memo.create () in
    let t0 = Unix.gettimeofday () in
    let c0 = cpu_now () in
    let o = Pom.Dse.Engine.run ~cache ~jobs (build ()) in
    let dt = Unix.gettimeofday () -. t0 in
    let dc = cpu_now () -. c0 in
    if dt < !best then begin
      best := dt;
      cpu := dc
    end;
    outcome := Some o
  done;
  (!best, !cpu, Option.get !outcome)

let directive_strings (o : Pom.Dse.Engine.outcome) =
  List.map
    (Format.asprintf "%a" Pom.Dsl.Schedule.pp)
    o.Pom.Dse.Engine.result.Pom.Dse.Stage2.directives

let same_design (a : Pom.Dse.Engine.outcome) (b : Pom.Dse.Engine.outcome) =
  let ra = a.Pom.Dse.Engine.result and rb = b.Pom.Dse.Engine.result in
  directive_strings a = directive_strings b
  && ra.Pom.Dse.Stage2.tile_vectors = rb.Pom.Dse.Stage2.tile_vectors
  && ra.Pom.Dse.Stage2.report = rb.Pom.Dse.Stage2.report

let run ?(jobs = max 4 Pom.Par.default_jobs) ?(mode = Pom.Par.Domains) () =
  Pom.Par.set_mode mode;
  let mode_name = Pom.Par.mode_to_string mode in
  Util.section
    (Printf.sprintf
       "BENCH dse | DSE wall clock, jobs=1 vs jobs=%d (%s, size %d)" jobs
       mode_name size);
  let rows =
    List.map
      (fun (name, build) ->
        let t1, c1, o1 = measure ~jobs:1 build in
        let tn, cn, on_ = measure ~jobs build in
        (name, t1, c1, tn, cn, same_design o1 on_))
      kernels
  in
  Util.print_table
    [
      "kernel";
      "jobs=1 (s)";
      Printf.sprintf "jobs=%d (s)" jobs;
      "speedup";
      "cpu (s)";
      "identical design";
    ]
    (List.map
       (fun (name, t1, _, tn, cn, identical) ->
         [
           name;
           Printf.sprintf "%.3f" t1;
           Printf.sprintf "%.3f" tn;
           Printf.sprintf "%.2fx" (t1 /. tn);
           Printf.sprintf "%.3f" cn;
           (if identical then "yes" else "NO");
         ])
       rows);
  let oc = open_out "BENCH_dse.json" in
  Printf.fprintf oc
    "{\n\
    \  \"size\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"jobs_mode\": %S,\n\
    \  \"host_cores\": %d,\n\
    \  \"kernels\": [\n"
    size jobs mode_name
    (Domain.recommended_domain_count ());
  List.iteri
    (fun i (name, t1, c1, tn, cn, identical) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"wall_s_jobs1\": %.6f, \"cpu_s_jobs1\": %.6f, \
         \"wall_s_jobsN\": %.6f, \"cpu_s_jobsN\": %.6f, \"speedup\": %.4f, \
         \"identical_design\": %b }%s\n"
        name t1 c1 tn cn (t1 /. tn) identical
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_dse.json\n";
  if List.exists (fun (_, _, _, _, _, identical) -> not identical) rows then begin
    Printf.eprintf
      "bench dse: design differs across job counts — determinism broken\n";
    exit 1
  end
