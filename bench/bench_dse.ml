(* DSE wall-clock benchmark: the two-stage search on the paper kernels at
   jobs=1 and jobs=N in BOTH jobs modes (domains and procs) in one run,
   each measurement on a cold parent memo, plus the cross-jobs/cross-mode
   determinism check (identical directives, tile vectors, and report).
   Scheduler counters (chunks, steals, splits, occupancy) and the
   incremental-polyhedral projection-cache hit rate ride along.  Results
   go to BENCH_dse.json for the CI smoke job. *)

let size = 512

let kernels =
  [
    ("gemm", fun () -> Pom.Workloads.Polybench.gemm size);
    ("2mm", fun () -> Pom.Workloads.Polybench.mm2 size);
    ("bicg", fun () -> Pom.Workloads.Polybench.bicg size);
  ]

let repeats = 3

(* total process CPU seconds, children included — in procs mode the
   evaluation burns inside reaped worker processes, so cutime/cstime is
   where the shards show up *)
let cpu_now () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime +. t.Unix.tms_cutime
  +. t.Unix.tms_cstime

type meas = {
  wall : float;
  cpu : float;
  outcome : Pom.Dse.Engine.outcome;
  sched : Pom.Par.Chunks.stats;
  proj_hits : int;
  proj_misses : int;
}

(* Best-of-N, fresh parent memo per run: a warm report memo would hide the
   search cost.  Worker processes (procs mode) are borrowed from the
   persistent pool and keep their own caches warm across repeats — that
   amortized steady state is exactly what the pool exists to deliver, so
   it is what we measure. *)
let measure ~jobs ~mode ~chunk build =
  Pom.Par.set_mode mode;
  let best = ref None in
  for _ = 1 to repeats do
    let cache = Pom.Pipeline.Memo.create () in
    let p0 = Pom.Poly.Projcache.stats () in
    let t0 = Unix.gettimeofday () in
    let c0 = cpu_now () in
    let o = Pom.Dse.Engine.run ~cache ~jobs ~chunk (build ()) in
    let dt = Unix.gettimeofday () -. t0 in
    let dc = cpu_now () -. c0 in
    let p1 = Pom.Poly.Projcache.stats () in
    let hits =
      p1.Pom.Poly.Projcache.exact_hits + p1.Pom.Poly.Projcache.param_hits
      - p0.Pom.Poly.Projcache.exact_hits - p0.Pom.Poly.Projcache.param_hits
    and misses =
      p1.Pom.Poly.Projcache.exact_misses - p0.Pom.Poly.Projcache.exact_misses
    in
    match !best with
    | Some b when b.wall <= dt -> ()
    | _ ->
        best :=
          Some
            {
              wall = dt;
              cpu = dc;
              outcome = o;
              sched = o.Pom.Dse.Engine.result.Pom.Dse.Stage2.sched;
              proj_hits = hits;
              proj_misses = misses;
            }
  done;
  Option.get !best

let directive_strings (o : Pom.Dse.Engine.outcome) =
  List.map
    (Format.asprintf "%a" Pom.Dsl.Schedule.pp)
    o.Pom.Dse.Engine.result.Pom.Dse.Stage2.directives

let same_design (a : Pom.Dse.Engine.outcome) (b : Pom.Dse.Engine.outcome) =
  let ra = a.Pom.Dse.Engine.result and rb = b.Pom.Dse.Engine.result in
  directive_strings a = directive_strings b
  && ra.Pom.Dse.Stage2.tile_vectors = rb.Pom.Dse.Stage2.tile_vectors
  && ra.Pom.Dse.Stage2.report = rb.Pom.Dse.Stage2.report

let hit_rate hits misses =
  if hits + misses = 0 then 0.0
  else float_of_int hits /. float_of_int (hits + misses)

let run ?(jobs = max 4 Pom.Par.default_jobs) ?(mode = Pom.Par.Domains) () =
  let chunk = Pom.Par.chunk () in
  let mode0 = Pom.Par.mode () in
  Fun.protect ~finally:(fun () -> Pom.Par.set_mode mode0) @@ fun () ->
  ignore mode;
  Util.section
    (Printf.sprintf
       "BENCH dse | DSE wall clock, jobs=1 vs jobs=%d (domains + procs, \
        size %d, chunk %d)"
       jobs size chunk);
  let rows =
    List.map
      (fun (name, build) ->
        let m1 = measure ~jobs:1 ~mode:Pom.Par.Domains ~chunk build in
        let md = measure ~jobs ~mode:Pom.Par.Domains ~chunk build in
        let mp = measure ~jobs ~mode:Pom.Par.Procs ~chunk build in
        let identical =
          same_design m1.outcome md.outcome && same_design m1.outcome mp.outcome
        in
        (name, m1, md, mp, identical))
      kernels
  in
  Util.print_table
    [
      "kernel";
      "jobs=1 (s)";
      Printf.sprintf "domains j=%d (s)" jobs;
      Printf.sprintf "procs j=%d (s)" jobs;
      "steals/splits";
      "occup";
      "proj hit%";
      "identical";
    ]
    (List.map
       (fun (name, m1, md, mp, identical) ->
         [
           name;
           Printf.sprintf "%.3f" m1.wall;
           Printf.sprintf "%.3f" md.wall;
           Printf.sprintf "%.3f" mp.wall;
           Printf.sprintf "%d/%d" md.sched.Pom.Par.Chunks.steals
             md.sched.Pom.Par.Chunks.splits;
           Printf.sprintf "%.2f" (Pom.Par.Chunks.occupancy md.sched);
           Printf.sprintf "%.0f%%"
             (100.0 *. hit_rate m1.proj_hits m1.proj_misses);
           (if identical then "yes" else "NO");
         ])
       rows);
  let oc = open_out "BENCH_dse.json" in
  Printf.fprintf oc
    "{\n\
    \  \"size\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"chunk\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"kernels\": [\n"
    size jobs chunk
    (Domain.recommended_domain_count ());
  let emit_mode oc label (m : meas) (m1 : meas) =
    Printf.fprintf oc
      "      \"%s\": { \"wall_s\": %.6f, \"cpu_s\": %.6f, \"speedup\": %.4f, \
       \"overhead_s\": %.6f, \"steals\": %d, \"splits\": %d, \"chunks\": %d, \
       \"items\": %d, \"forfeited\": %d, \"respawns\": %d, \"occupancy\": \
       %.4f, \"proj_hit_rate\": %.4f }"
      label m.wall m.cpu (m1.wall /. m.wall)
      (Float.max 0.0 (m.wall -. m1.wall))
      m.sched.Pom.Par.Chunks.steals m.sched.Pom.Par.Chunks.splits
      m.sched.Pom.Par.Chunks.chunks m.sched.Pom.Par.Chunks.items
      m.sched.Pom.Par.Chunks.forfeited m.sched.Pom.Par.Chunks.respawns
      (Pom.Par.Chunks.occupancy m.sched)
      (hit_rate m.proj_hits m.proj_misses)
  in
  List.iteri
    (fun i (name, m1, md, mp, identical) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"wall_s_jobs1\": %.6f, \"cpu_s_jobs1\": %.6f,\n\
        \      \"proj_hit_rate_jobs1\": %.4f, \"identical_design\": %b,\n"
        name m1.wall m1.cpu
        (hit_rate m1.proj_hits m1.proj_misses)
        identical;
      emit_mode oc "domains" md m1;
      Printf.fprintf oc ",\n";
      emit_mode oc "procs" mp m1;
      Printf.fprintf oc "\n    }%s\n"
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_dse.json\n";
  if List.exists (fun (_, _, _, _, identical) -> not identical) rows then begin
    Printf.eprintf
      "bench dse: design differs across job counts or modes — determinism \
       broken\n";
    exit 1
  end
