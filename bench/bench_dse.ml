(* DSE wall-clock benchmark: the two-stage search on the paper kernels at
   jobs=1 and jobs=N, each measurement on a cold report memo, plus the
   cross-jobs determinism check (identical directives, tile vectors, and
   report).  Results go to BENCH_dse.json for the CI smoke job. *)

let size = 512

let kernels =
  [
    ("gemm", fun () -> Pom.Workloads.Polybench.gemm size);
    ("2mm", fun () -> Pom.Workloads.Polybench.mm2 size);
    ("bicg", fun () -> Pom.Workloads.Polybench.bicg size);
  ]

let repeats = 3

(* best-of-N, fresh memo per run: a warm cache would hide the search cost *)
let measure ~jobs build =
  let best = ref infinity and outcome = ref None in
  for _ = 1 to repeats do
    let cache = Pom.Pipeline.Memo.create () in
    let t0 = Unix.gettimeofday () in
    let o = Pom.Dse.Engine.run ~cache ~jobs (build ()) in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    outcome := Some o
  done;
  (!best, Option.get !outcome)

let directive_strings (o : Pom.Dse.Engine.outcome) =
  List.map
    (Format.asprintf "%a" Pom.Dsl.Schedule.pp)
    o.Pom.Dse.Engine.result.Pom.Dse.Stage2.directives

let same_design (a : Pom.Dse.Engine.outcome) (b : Pom.Dse.Engine.outcome) =
  let ra = a.Pom.Dse.Engine.result and rb = b.Pom.Dse.Engine.result in
  directive_strings a = directive_strings b
  && ra.Pom.Dse.Stage2.tile_vectors = rb.Pom.Dse.Stage2.tile_vectors
  && ra.Pom.Dse.Stage2.report = rb.Pom.Dse.Stage2.report

let run ?(jobs = max 4 Pom.Par.default_jobs) () =
  Util.section
    (Printf.sprintf "BENCH dse | DSE wall clock, jobs=1 vs jobs=%d (size %d)"
       jobs size);
  let rows =
    List.map
      (fun (name, build) ->
        let t1, o1 = measure ~jobs:1 build in
        let tn, on_ = measure ~jobs build in
        (name, t1, tn, same_design o1 on_))
      kernels
  in
  Util.print_table
    [
      "kernel";
      "jobs=1 (s)";
      Printf.sprintf "jobs=%d (s)" jobs;
      "speedup";
      "identical design";
    ]
    (List.map
       (fun (name, t1, tn, identical) ->
         [
           name;
           Printf.sprintf "%.3f" t1;
           Printf.sprintf "%.3f" tn;
           Printf.sprintf "%.2fx" (t1 /. tn);
           (if identical then "yes" else "NO");
         ])
       rows);
  let oc = open_out "BENCH_dse.json" in
  Printf.fprintf oc "{\n  \"size\": %d,\n  \"jobs\": %d,\n  \"kernels\": [\n"
    size jobs;
  List.iteri
    (fun i (name, t1, tn, identical) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"wall_s_jobs1\": %.6f, \"wall_s_jobsN\": %.6f, \
         \"speedup\": %.4f, \"identical_design\": %b }%s\n"
        name t1 tn (t1 /. tn) identical
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_dse.json\n";
  if List.exists (fun (_, _, _, identical) -> not identical) rows then begin
    Printf.eprintf
      "bench dse: design differs across job counts — determinism broken\n";
    exit 1
  end
